(** An ActiveXML peer (Section 7): a repository of intensional
    documents, a set of provided Web services defined declaratively over
    the repository, a registry of remote services it can call, and the
    Schema Enforcement module on every communication path.

    Peers talk through the SOAP wire format of {!Soap} even in-process,
    so every exchange exercises the full serialize / parse / validate
    path. *)

exception Peer_error of string

type query =
  | Const of Axml_core.Document.forest
  | Repository_doc of string
  | Repository_path of { doc : string; path : string }
  | Compute of (Axml_core.Document.forest -> Axml_core.Document.forest)

type t

val create :
  ?enforcement:Enforcement.config -> name:string ->
  schema:Axml_schema.Schema.t -> unit -> t

val name : t -> string
val schema : t -> Axml_schema.Schema.t
val registry : t -> Axml_services.Registry.t

(** {1 Configuration}

    All the peer's tunables live in one {!config} record, applied
    atomically by {!configure}; any change invalidates every compiled
    enforcement artifact of the peer. The record is shared with the
    network endpoint ([Axml_net.Endpoint]), so an in-process peer and a
    served one are configured identically. *)

type config = {
  k : int;                 (** maximum rewriting depth (Definition 7) *)
  engine : Axml_core.Rewriter.engine;
  fallback_possible : bool;
      (** attempt a possible rewriting when no safe one exists *)
  eager_calls : (string -> bool) option;
      (** mixed approach: services to invoke up-front (Section 5) *)
  lint_gate : bool;
      (** refuse statically-doomed exchanges before invoking anything *)
  resilience : Axml_services.Resilience.t option;
      (** retry/timeout/circuit-breaker guard around every invocation *)
  jobs : int;
      (** domains for batch enforcement; [<= 1] means sequential *)
  track_min_k : bool;
      (** per-document minimal-k search surfaced in pipeline stats and
          [axml_enforce_min_k_total] (see [Enforcement.config]) *)
}

val default_config : config
(** [k = 1], lazy engine, no fallback, no eager calls, no lint gate, no
    resilience guard, sequential ([jobs = 1]), no min-k tracking. *)

val configure : t -> config -> unit
(** Replace the peer's configuration and invalidate every compiled
    enforcement artifact (pipelines, validation contexts, serve
    caches). *)

val current_config : t -> config

val enforcement_of_config : config -> Enforcement.config
(** The pipeline-level view of a peer config (the [executor] field is
    derived from [jobs]). *)

val set_enforcement : t -> Enforcement.config -> unit
(** Deprecated shim over {!configure}: replaces the enforcement part of
    the configuration wholesale (including resilience and executor). *)

val set_resilience : t -> Axml_services.Resilience.t option -> unit
(** Deprecated shim over {!configure}: install (or remove) the
    resilience guard, keeping everything else. *)

val set_jobs : t -> int -> unit
(** Deprecated shim over {!configure}: set the executor parallelism,
    keeping everything else. *)

val exchange_pipeline :
  t -> exchange:Axml_schema.Schema.t -> Enforcement.Pipeline.t
(** The peer's sender-side enforcement pipeline for an exchange schema:
    compiled on first use and cached while the peer's schema,
    enforcement config and the [exchange] schema value all stay
    unchanged (so its contract-analysis cache and counters persist
    across {!send}s of the same agreement). *)

val lint_exchange :
  t -> exchange:Axml_schema.Schema.t -> Axml_analysis.Diagnostic.t list
(** Contract-level lint diagnostics ({!Axml_analysis.Lint.lint_contract})
    for the peer's side of an exchange agreement — the diagnostics the
    lint gate ([enforcement.lint_gate]) would refuse on. Served from the
    cached {!exchange_pipeline}, so repeated calls (and subsequent
    {!send}s) reuse both the compiled contract and its lint. *)

(** {1 Repository} *)

val store : t -> string -> Axml_core.Document.t -> unit
val fetch : t -> string -> Axml_core.Document.t
(** @raise Peer_error on unknown names. *)

val documents : t -> string list

val select : t -> doc:string -> path:string -> Axml_core.Document.forest
(** Path query over a repository document (through its XML view, so
    intensional nodes traverse as <int:fun> elements). *)

(** {1 Provided services} *)

val provide :
  t -> ?cost:float -> name:string -> input:Axml_schema.Schema.content ->
  output:Axml_schema.Schema.content -> query -> unit
(** Declare a service; it becomes part of the peer's schema (its WSDL). *)

val provided_names : t -> string list

val serve : t -> method_name:string -> Axml_core.Document.forest ->
  Axml_core.Document.forest
(** Serve one call locally, running the enforcement module on both the
    parameters and the result (the "three steps", Section 7).
    @raise Peer_error on rejection. *)

val provided_service : t -> string -> Axml_services.Service.t option
(** A provided service as a {!Axml_services.Service.t} whose behaviour
    is {!serve} — the view WSDL description and networked invocation
    need. *)

val handle_wire : t -> string -> string
(** The peer's SOAP endpoint: request envelope in, response or fault
    envelope out. A request in an unsupported protocol version answers
    with a ["VersionMismatch"] fault; a malformed envelope with a
    ["Client"] fault — the handler never raises on bad input. *)

(** {1 Connecting peers} *)

val connect : t -> provider:t -> unit
(** Make every service provided by [provider] callable from the peer
    (through SOAP), importing the provider's WSDL declarations into the
    peer's schema. *)

val register_remote :
  t -> service:Axml_services.Service.t ->
  declaration:(Axml_schema.Schema.func * Axml_schema.Schema.t) -> unit
(** The wire-level counterpart of {!connect} for one service: register
    [service] (typically a networked proxy) in the peer's registry and
    import its parsed WSDL [declaration] (see {!Wsdl.parse_string}) into
    the peer's schema.
    @raise Wsdl.Wsdl_error on a signature conflict. *)

val call : t -> string -> Axml_core.Document.forest -> Axml_core.Document.forest
(** Call a connected service by name (through the registry, with full
    accounting). *)

(** {1 Document exchange} *)

type exchange_outcome = {
  sent : Axml_core.Document.t;           (** what went on the wire *)
  report : Enforcement.report;
  wire_bytes : int;
}

val send :
  t -> receiver:t -> exchange:Axml_schema.Schema.t ->
  ?predicate:(string -> string -> bool) -> as_name:string ->
  Axml_core.Document.t -> (exchange_outcome, Enforcement.error) result
(** Sender-side enforcement, wire crossing in XML, receiver-side
    validation, then storage under [as_name] in the receiver's
    repository. *)

val receive :
  t -> exchange:Axml_schema.Schema.t ->
  ?predicate:(string -> string -> bool) -> as_name:string -> string ->
  (Axml_core.Document.t, Enforcement.error) result
(** The receiver-side half of {!send}, also what a network endpoint runs
    on an inbound exchange: parse the XML wire bytes, validate against
    the [exchange] schema (never trust the sender), and store the
    document under [as_name]. Returns the stored document; a malformed
    or non-conforming payload is an [Error (Rejected _)] carrying one
    failure per violation. *)
