(** An ActiveXML peer (Section 7): a repository of intensional
    documents, a set of provided Web services defined declaratively over
    the repository, a registry of remote services it can call, and the
    Schema Enforcement module on every communication path.

    Peers talk through the SOAP wire format of {!Soap} even in-process,
    so every exchange exercises the full serialize / parse / validate
    path. *)

exception Peer_error of string

type query =
  | Const of Axml_core.Document.forest
  | Repository_doc of string
  | Repository_path of { doc : string; path : string }
  | Compute of (Axml_core.Document.forest -> Axml_core.Document.forest)

type t

val create :
  ?enforcement:Enforcement.config -> name:string ->
  schema:Axml_schema.Schema.t -> unit -> t

val schema : t -> Axml_schema.Schema.t
val registry : t -> Axml_services.Registry.t

val set_enforcement : t -> Enforcement.config -> unit
(** Also invalidates every compiled enforcement artifact of the peer. *)

val set_resilience : t -> Axml_services.Resilience.t option -> unit
(** Install (or remove) a retry/timeout/circuit-breaker guard around
    every invocation the peer's enforcement performs; invalidates the
    compiled artifacts like {!set_enforcement}. *)

val set_jobs : t -> int -> unit
(** Run the peer's batch enforcement on this many domains
    ([Enforcement.Parallel]); [jobs <= 1] restores the sequential
    executor. Invalidates the compiled artifacts like
    {!set_enforcement}. *)

val exchange_pipeline :
  t -> exchange:Axml_schema.Schema.t -> Enforcement.Pipeline.t
(** The peer's sender-side enforcement pipeline for an exchange schema:
    compiled on first use and cached while the peer's schema,
    enforcement config and the [exchange] schema value all stay
    unchanged (so its contract-analysis cache and counters persist
    across {!send}s of the same agreement). *)

val lint_exchange :
  t -> exchange:Axml_schema.Schema.t -> Axml_analysis.Diagnostic.t list
(** Contract-level lint diagnostics ({!Axml_analysis.Lint.lint_contract})
    for the peer's side of an exchange agreement — the diagnostics the
    lint gate ([enforcement.lint_gate]) would refuse on. Served from the
    cached {!exchange_pipeline}, so repeated calls (and subsequent
    {!send}s) reuse both the compiled contract and its lint. *)

(** {1 Repository} *)

val store : t -> string -> Axml_core.Document.t -> unit
val fetch : t -> string -> Axml_core.Document.t
(** @raise Peer_error on unknown names. *)

val documents : t -> string list

val select : t -> doc:string -> path:string -> Axml_core.Document.forest
(** Path query over a repository document (through its XML view, so
    intensional nodes traverse as <int:fun> elements). *)

(** {1 Provided services} *)

val provide :
  t -> ?cost:float -> name:string -> input:Axml_schema.Schema.content ->
  output:Axml_schema.Schema.content -> query -> unit
(** Declare a service; it becomes part of the peer's schema (its WSDL). *)

val provided_names : t -> string list

val serve : t -> method_name:string -> Axml_core.Document.forest ->
  Axml_core.Document.forest
(** Serve one call locally, running the enforcement module on both the
    parameters and the result (the "three steps", Section 7).
    @raise Peer_error on rejection. *)

val handle_wire : t -> string -> string
(** The peer's SOAP endpoint: request envelope in, response or fault
    envelope out. *)

(** {1 Connecting peers} *)

val connect : t -> provider:t -> unit
(** Make every service provided by [provider] callable from the peer
    (through SOAP), importing the provider's WSDL declarations into the
    peer's schema. *)

val call : t -> string -> Axml_core.Document.forest -> Axml_core.Document.forest
(** Call a connected service by name (through the registry, with full
    accounting). *)

(** {1 Document exchange} *)

type exchange_outcome = {
  sent : Axml_core.Document.t;           (** what went on the wire *)
  report : Enforcement.report;
  wire_bytes : int;
}

val send :
  t -> receiver:t -> exchange:Axml_schema.Schema.t ->
  ?predicate:(string -> string -> bool) -> as_name:string ->
  Axml_core.Document.t -> (exchange_outcome, Enforcement.error) result
(** Sender-side enforcement, wire crossing in XML, receiver-side
    validation, then storage under [as_name] in the receiver's
    repository. *)
