(* The Schema Enforcement module (Section 7): the component that sits on
   every peer's communication path and guarantees that exchanged data
   matches the agreed (WSDL_int / exchange) schema. Its three steps:
     (i)   verify that the data conforms to the schema;
     (ii)  if not, try to rewrite it into the required structure —
           safely if it can, optionally falling back to a possible
           rewriting, optionally pre-firing cheap calls (mixed);
     (iii) if this fails, report an error.

   Because the module guards a communication path, the same (s0,
   exchange) pair is enforced against streams of documents. [Pipeline]
   compiles the pair once — validation context + exchange contract —
   and amortizes all static analysis across the stream; the one-shot
   [enforce] keeps working for single documents and accepts a prebuilt
   rewriter so even one-off callers can reuse a compiled contract. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Validate = Axml_core.Validate
module Rewriter = Axml_core.Rewriter
module Contract = Axml_core.Contract
module Execute = Axml_core.Execute
module Resilience = Axml_services.Resilience
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace
module Diagnostic = Axml_analysis.Diagnostic
module Lint = Axml_analysis.Lint

(* [enforce_compiled] is the single chokepoint every enforcement goes
   through (one-shot [enforce] and [Pipeline] both), so the
   process-wide document counters live here and are never double
   counted. *)
let m_documents outcome =
  Metrics.counter ~help:"Documents enforced, by outcome"
    ~labels:[ ("outcome", outcome) ]
    "axml_enforcement_documents_total"

let m_doc_conformed = m_documents "conformed"
let m_doc_rewritten = m_documents "rewritten"
let m_doc_rewritten_possible = m_documents "rewritten_possible"
let m_doc_rejected = m_documents "rejected"
let m_doc_attempt_failed = m_documents "attempt_failed"
let m_doc_fault = m_documents "fault"
let m_doc_precluded = m_documents "precluded"

let m_invocations =
  Metrics.counter ~help:"Invocations recorded on accepted documents"
    "axml_enforcement_invocations_total"

let h_enforce =
  Metrics.histogram ~help:"Wall-clock seconds to enforce one document"
    "axml_enforcement_seconds"

let m_jobs =
  Metrics.gauge ~help:"Worker domains used by the most recent batch"
    "axml_pipeline_jobs"

let g_enforce_k =
  Metrics.gauge ~help:"Configured rewriting depth k of the most recent enforcement"
    "axml_enforce_k"

(* Registration is idempotent (same name + labels = same child), so
   the dynamic k label can go straight through [Metrics.counter]; the
   registry mutex is only taken on this opt-in path. *)
let m_min_k ~kind ~k =
  Metrics.counter
    ~help:"Documents by minimal rewriting depth (capacity planning)"
    ~labels:[ ("kind", kind); ("k", k) ]
    "axml_enforce_min_k_total"

(* Wall clock for pipeline accounting: the injectable registry clock
   (defaults to [Unix.gettimeofday]). [Sys.time] would report process
   CPU time — blind to service waits and summed across domains. *)
let wall () = Metrics.now Metrics.default

type executor =
  | Sequential
  | Parallel of { jobs : int }
      (* shard batches across [jobs] OCaml domains; results keep input
         order. Invokers must be thread-safe (see mli). *)

type config = {
  k : int;
  engine : Rewriter.engine;
  fallback_possible : bool;
    (* when the safe rewriting does not exist, attempt a possible one *)
  eager_calls : (string -> bool) option;
    (* mixed approach: services to invoke up-front (Section 5) *)
  resilience : Resilience.t option;
    (* retry/timeout/breaker guard around every invocation *)
  lint_gate : bool;
    (* refuse statically-doomed work before invoking anything: a
       contract carrying error-level lint diagnostics precludes every
       document; a document whose calls lint at error level is
       precluded individually *)
  executor : executor;
    (* how [Pipeline.enforce_many] runs a batch *)
  track_min_k : bool;
    (* per accepted/checked document, also search for the smallest
       depth at which it would enforce (Rewriter.minimal_k) and surface
       the distribution in pipeline stats, axml_enforce_min_k_total and
       trace notes. Off by default: the search costs extra analyses at
       depths below k (cached, but not free). *)
}

let default_config = {
  k = 1;
  engine = Rewriter.Lazy;
  fallback_possible = false;
  eager_calls = None;
  resilience = None;
  lint_gate = false;
  executor = Sequential;
  track_min_k = false;
}

type action =
  | Conformed            (* step (i): already an instance, nothing to do *)
  | Rewritten            (* step (ii): safe rewriting *)
  | Rewritten_possible   (* step (ii): possible rewriting that succeeded *)

type report = {
  action : action;
  invocations : Rewriter.located_invocation list;
}

type error =
  | Rejected of Rewriter.failure list       (* step (iii) *)
  | Attempt_failed of Rewriter.failure list (* a possible rewriting failed at run time *)
  | Service_fault of Rewriter.failure list
      (* the environment's fault, not the document's: a service broke its
         contract, crashed past its retry policy, or an engine invariant
         failed — the document may well be rewritable on a healthy path *)
  | Precluded of Diagnostic.t list
      (* the lint gate refused up front: static analysis proved the
         exchange (or this document) can never succeed, so nothing was
         validated or invoked *)

let pp_error ppf = function
  | Rejected fs ->
    Fmt.pf ppf "rejected: %a" Fmt.(list ~sep:(any "; ") Rewriter.pp_failure) fs
  | Attempt_failed fs ->
    Fmt.pf ppf "attempt failed: %a" Fmt.(list ~sep:(any "; ") Rewriter.pp_failure) fs
  | Service_fault fs ->
    Fmt.pf ppf "service fault: %a" Fmt.(list ~sep:(any "; ") Rewriter.pp_failure) fs
  | Precluded ds ->
    Fmt.pf ppf "precluded: %a" Fmt.(list ~sep:(any "; ") Diagnostic.pp) ds

(* ------------------------------------------------------------------ *)
(* The three steps over precompiled artifacts                          *)
(* ------------------------------------------------------------------ *)

(* Everything that can be computed once per (s0, exchange, config)
   instead of once per document. *)
type compiled = {
  c_rewriter : Rewriter.t;
  c_validate : Validate.ctx;
  c_lint : Diagnostic.t list Lazy.t;
    (* contract-level diagnostics, computed once per compiled path on
       first use (lint gate or [Pipeline.lint]) *)
}

let of_rewriter rw =
  { c_rewriter = rw;
    c_validate =
      Validate.ctx ~env:(Rewriter.env rw)
        (Contract.target (Rewriter.contract rw));
    c_lint = lazy (Lint.lint_contract (Rewriter.contract rw)) }

let compile ?predicate ~config ~s0 ~exchange () =
  of_rewriter
    (Rewriter.create ~k:config.k ~engine:config.engine ?predicate ~s0
       ~target:exchange ())

let compile_of_rewriter = of_rewriter

let classify fs =
  (* a fault is the environment's problem, never a verdict on the
     document — report it as such and let the caller retry later *)
  if List.exists Rewriter.failure_is_fault fs then Service_fault fs
  else Rejected fs

(* Tracing sits on the per-document hot path: render symbols with plain
   string operations, not [Fmt] (format interpretation costs ~1 us). *)
let subject_of doc =
  match Document.symbol doc with
  | Axml_schema.Symbol.Label l -> l
  | Axml_schema.Symbol.Fun f -> f ^ "()"
  | Axml_schema.Symbol.Data -> "#data"

(* The lint gate (step (0), optional): refuse statically-doomed work
   before validating or invoking anything. Only error-level findings
   gate — warnings and hints never block an exchange. *)
let gate_errors ~compiled doc =
  let errors ds =
    List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) ds
  in
  match errors (Lazy.force compiled.c_lint) with
  | _ :: _ as ds -> Some ds
  | [] -> (
    match
      errors (Lint.lint_document (Rewriter.contract compiled.c_rewriter) doc)
    with
    | _ :: _ as ds -> Some ds
    | [] -> None)

let enforce_steps ~config ~compiled ~(invoker : Execute.invoker)
    (doc : Document.t) : (Document.t * report, error) result =
  match if config.lint_gate then gate_errors ~compiled doc else None with
  | Some ds -> Error (Precluded ds)
  | None ->
  let rw = compiled.c_rewriter in
  let invoker =
    match config.resilience with
    | Some r -> Resilience.wrap_invoker r invoker
    | None -> invoker
  in
  (* step (ii) driver, shared by both walks below. The materializer's
     subtree-sharing walk returns a conforming document physically
     unchanged, which is how the fused path classifies [Conformed]. *)
  let rewrite doc pre_invocations =
    match Rewriter.materialize ~mode:Rewriter.Safe rw ~invoker doc with
    | Ok (doc', invs) ->
      if doc' == doc && pre_invocations = [] && invs = [] then
        Ok (doc, { action = Conformed; invocations = [] })
      else
        Ok (doc', { action = Rewritten; invocations = pre_invocations @ invs })
    | Error safe_failures ->
      let faulty = List.exists Rewriter.failure_is_fault safe_failures in
      if faulty then
        (* a broken service is not evidence the document needs a possible
           rewriting: do not fall back, report the fault *)
        Error (Service_fault safe_failures)
      else if not config.fallback_possible then Error (Rejected safe_failures)
      else begin
        match Rewriter.materialize ~mode:Rewriter.Possible_mode rw ~invoker doc with
        | Ok (doc', invs) ->
          Ok (doc',
              { action = Rewritten_possible;
                invocations = pre_invocations @ invs })
        | Error fs ->
          if List.exists Rewriter.failure_is_fault fs then Error (Service_fault fs)
          else
            let runtime =
              List.exists
                (fun f ->
                  match f.Rewriter.reason with
                  | Rewriter.Execution_failed _
                  | Rewriter.Unrewritable_output _ -> true
                  | _ -> false)
                fs
            in
            if runtime then Error (Attempt_failed fs) else Error (Rejected fs)
      end
  in
  if (not (Trace.enabled Trace.default)) && config.eager_calls = None then
    (* fused fast path: one walk — the materializer validates each
       children word through the dense tables as it goes, so step (i)
       needs no separate traversal *)
    rewrite doc []
  else begin
    (* step (i): validation, kept as its own walk so tracers see the
       violation count and eager pre-materialization only runs on
       non-instances *)
    let conforming =
      if Trace.enabled Trace.default then begin
        let violations = Validate.document_violations compiled.c_validate doc in
        Trace.emit
          (Validation
             { subject = subject_of doc; violations = List.length violations });
        violations = []
      end
      else Validate.document_conforms compiled.c_validate doc
    in
    if conforming then
      Ok (doc, { action = Conformed; invocations = [] })
    else begin
      (* step (ii): rewriting *)
      let pre =
        match config.eager_calls with
        | Some eager ->
          (match Rewriter.pre_materialize rw ~eager_calls:eager ~invoker doc with
           | Ok (doc', invs) -> Ok (doc', invs)
           | Error f -> Error (classify [ f ]))
        | None -> Ok (doc, [])
      in
      match pre with
      | Error e -> Error e
      | Ok (doc, pre_invocations) -> rewrite doc pre_invocations
    end
  end

let enforce_compiled ~config ~compiled ~(invoker : Execute.invoker)
    (doc : Document.t) : (Document.t * report, error) result =
  Metrics.set g_enforce_k (float_of_int config.k);
  let subject () = subject_of doc in
  let result =
    Trace.with_span "enforce" ~detail:subject @@ fun () ->
    let result =
      Metrics.time h_enforce (fun () ->
          enforce_steps ~config ~compiled ~invoker doc)
    in
    (match result with
     | Ok (_, report) ->
       (match report.action with
        | Conformed -> Metrics.inc m_doc_conformed
        | Rewritten -> Metrics.inc m_doc_rewritten
        | Rewritten_possible -> Metrics.inc m_doc_rewritten_possible);
       Metrics.inc m_invocations ~by:(List.length report.invocations)
     | Error (Rejected _) -> Metrics.inc m_doc_rejected
     | Error (Attempt_failed _) -> Metrics.inc m_doc_attempt_failed
     | Error (Service_fault _) -> Metrics.inc m_doc_fault
     | Error (Precluded _) -> Metrics.inc m_doc_precluded);
    if Trace.enabled Trace.default then begin
      let verdict, detail =
        match result with
        | Ok (_, { action = Conformed; _ }) ->
          (Trace.Accept, "already conforms")
        | Ok (_, { action = Rewritten; invocations }) ->
          (Trace.Accept,
           "safely rewritten, "
           ^ string_of_int (List.length invocations)
           ^ " invocation(s)")
        | Ok (_, { action = Rewritten_possible; invocations }) ->
          (Trace.Accept,
           "possible rewriting succeeded, "
           ^ string_of_int (List.length invocations)
           ^ " invocation(s)")
        | Error (Rejected fs) ->
          (Trace.Reject, string_of_int (List.length fs) ^ " failure(s)")
        | Error (Attempt_failed fs) ->
          (Trace.Reject,
           "possible attempt died at run time ("
           ^ string_of_int (List.length fs)
           ^ " failure(s))")
        | Error (Service_fault fs) ->
          (Trace.Fault,
           string_of_int (List.length fs) ^ " service failure(s)")
        | Error (Precluded ds) ->
          (Trace.Reject,
           "statically precluded ("
           ^ string_of_int (List.length ds)
           ^ " lint error(s))")
      in
      Trace.emit (Decision { subject = subject (); verdict; detail })
    end;
    result
  in
  result

(* Enforce [exchange] on [doc]. [s0] is the local schema (it brings the
   WSDL declarations of the functions the document may embed). When
   [rewriter] is given, its compiled contract is reused (and must have
   been built for the same schema pair — [s0]/[exchange] are then only
   trusted, not recompiled). *)
let enforce ?(config = default_config) ?predicate ?rewriter ~s0 ~exchange
    ~(invoker : Execute.invoker) (doc : Document.t) :
    (Document.t * report, error) result =
  let compiled =
    match rewriter with
    | Some rw -> compile_of_rewriter rw
    | None -> compile ?predicate ~config ~s0 ~exchange ()
  in
  enforce_compiled ~config ~compiled ~invoker doc

(* ------------------------------------------------------------------ *)
(* Batch enforcement over document streams                             *)
(* ------------------------------------------------------------------ *)

module Pipeline = struct
  type t = {
    p_config : config;
    p_compiled : compiled;
    p_invoker : Execute.invoker;
    mutable p_clones : compiled array;
      (* per-worker-domain compiled artifacts for parallel batches
         (worker 0 reuses [p_compiled]); grown on demand, kept across
         batches so clone caches stay warm *)
    mutable p_docs : int;
    mutable p_conformed : int;
    mutable p_rewritten : int;
    mutable p_rewritten_possible : int;
    mutable p_rejected : int;
    mutable p_attempt_failed : int;
    mutable p_faults : int;
    mutable p_precluded : int;
    mutable p_invocations : int;
    mutable p_elapsed : float;
    mutable p_cache_base : Contract.stats;
    mutable p_resilience_base : Resilience.stats;
    (* minimal-k bookkeeping, populated only when [config.track_min_k] *)
    p_min_k : (int, int) Hashtbl.t;  (* minimal safe depth -> documents *)
    mutable p_min_k_unbounded : int;
      (* documents with no safe depth within [config.k] *)
    mutable p_min_k_measured : int;
  }

  let contract t = Rewriter.contract t.p_compiled.c_rewriter
  let rewriter t = t.p_compiled.c_rewriter
  let config t = t.p_config
  let lint t = Lazy.force t.p_compiled.c_lint

  let resilience_total config =
    match config.resilience with
    | Some r -> Resilience.total r
    | None -> Resilience.zero_stats

  (* The shared contract's counters plus every clone's: the batch-level
     cache view a parallel pipeline reports. Clones are born with
     zeroed counters, so growing the pool mid-window never perturbs a
     running [diff_stats] window. *)
  let cache_total t =
    Array.fold_left
      (fun acc c ->
        Contract.add_stats acc (Contract.stats (Rewriter.contract c.c_rewriter)))
      (Contract.stats (contract t))
      t.p_clones

  let make ~config ~compiled ~invoker =
    { p_config = config;
      p_compiled = compiled;
      p_invoker = invoker;
      p_clones = [||];
      p_docs = 0; p_conformed = 0; p_rewritten = 0; p_rewritten_possible = 0;
      p_rejected = 0; p_attempt_failed = 0; p_faults = 0; p_precluded = 0;
      p_invocations = 0;
      p_elapsed = 0.;
      p_cache_base = Contract.stats (Rewriter.contract compiled.c_rewriter);
      p_resilience_base = resilience_total config;
      p_min_k = Hashtbl.create 8;
      p_min_k_unbounded = 0;
      p_min_k_measured = 0 }

  let create ?(config = default_config) ?predicate ~s0 ~exchange ~invoker () =
    make ~config ~compiled:(compile ?predicate ~config ~s0 ~exchange ()) ~invoker

  (* [config.k] / [config.engine] are ignored here: the contract fixes
     them. *)
  let of_contract ?(config = default_config) ~invoker contract =
    make ~config
      ~compiled:(compile_of_rewriter (Rewriter.of_contract contract))
      ~invoker

  type min_k_stats = {
    measured : int;
    distribution : (int * int) list;
      (* (minimal safe depth, documents), ascending in depth *)
    unbounded : int;
  }

  type stats = {
    docs : int;
    conformed : int;
    rewritten : int;
    rewritten_possible : int;
    rejected : int;
    attempt_failed : int;
    faults : int;
    precluded : int;
    invocations : int;
    elapsed_s : float;
    docs_per_s : float;
    cache : Contract.stats;
    cache_hit_rate : float;
    resilience : Resilience.stats;
    min_k : min_k_stats;
  }

  let min_k_snapshot t =
    { measured = t.p_min_k_measured;
      unbounded = t.p_min_k_unbounded;
      distribution =
        Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.p_min_k []
        |> List.sort (fun (a, _) (b, _) -> compare a b) }

  let stats (t : t) =
    let cache = Contract.diff_stats ~before:t.p_cache_base (cache_total t) in
    { docs = t.p_docs;
      conformed = t.p_conformed;
      rewritten = t.p_rewritten;
      rewritten_possible = t.p_rewritten_possible;
      rejected = t.p_rejected;
      attempt_failed = t.p_attempt_failed;
      faults = t.p_faults;
      precluded = t.p_precluded;
      invocations = t.p_invocations;
      elapsed_s = t.p_elapsed;
      docs_per_s =
        (if t.p_elapsed > 0. then float_of_int t.p_docs /. t.p_elapsed else 0.);
      cache;
      cache_hit_rate = Contract.hit_rate cache;
      resilience =
        Resilience.diff_stats ~before:t.p_resilience_base
          (resilience_total t.p_config);
      min_k = min_k_snapshot t }

  let pp_min_k ppf m =
    if m.measured = 0 then Fmt.string ppf "not tracked"
    else
      Fmt.pf ppf "%d measured (%a%s)" m.measured
        Fmt.(
          list ~sep:(any ", ")
            (fun ppf (k, n) -> Fmt.pf ppf "k=%d: %d" k n))
        m.distribution
        (if m.unbounded > 0 then
           Fmt.str "%sover budget: %d"
             (if m.distribution = [] then "" else ", ")
             m.unbounded
         else "")

  let pp_stats ppf s =
    Fmt.pf ppf
      "%d docs (%d conformed, %d rewritten, %d possible, %d rejected, %d \
       attempt-failed, %d faulted, %d precluded), %d invocations, %.3f s \
       (%.0f docs/s), cache: %a, resilience: %a, min-k: %a"
      s.docs s.conformed s.rewritten s.rewritten_possible s.rejected
      s.attempt_failed s.faults s.precluded s.invocations s.elapsed_s
      s.docs_per_s Contract.pp_stats s.cache Resilience.pp_stats s.resilience
      pp_min_k s.min_k

  let reset_stats (t : t) =
    t.p_docs <- 0;
    t.p_conformed <- 0;
    t.p_rewritten <- 0;
    t.p_rewritten_possible <- 0;
    t.p_rejected <- 0;
    t.p_attempt_failed <- 0;
    t.p_faults <- 0;
    t.p_precluded <- 0;
    t.p_invocations <- 0;
    t.p_elapsed <- 0.;
    t.p_cache_base <- cache_total t;
    t.p_resilience_base <- resilience_total t.p_config;
    Hashtbl.reset t.p_min_k;
    t.p_min_k_unbounded <- 0;
    t.p_min_k_measured <- 0

  (* Outcome bookkeeping shared by the sequential and parallel paths.
     Only the main domain tallies: parallel workers hand their results
     back first, so these plain mutable fields never race. *)
  let tally t result =
    t.p_docs <- t.p_docs + 1;
    (match result with
     | Ok (_, (report : report)) ->
       t.p_invocations <- t.p_invocations + List.length report.invocations;
       (match report.action with
        | Conformed -> t.p_conformed <- t.p_conformed + 1
        | Rewritten -> t.p_rewritten <- t.p_rewritten + 1
        | Rewritten_possible ->
          t.p_rewritten_possible <- t.p_rewritten_possible + 1)
     | Error (Rejected _) -> t.p_rejected <- t.p_rejected + 1
     | Error (Attempt_failed _) -> t.p_attempt_failed <- t.p_attempt_failed + 1
     | Error (Service_fault _) -> t.p_faults <- t.p_faults + 1
     | Error (Precluded _) -> t.p_precluded <- t.p_precluded + 1)

  let record t started result =
    t.p_elapsed <- t.p_elapsed +. (wall () -. started);
    tally t result;
    result

  (* The minimal-k search (opt-in): how deep does this document
     actually need the rewriter to go? Every per-word query runs
     through the k-keyed analysis cache, so a stream of similar
     documents pays the sub-k analyses once. Main-domain only — the
     histogram fields are plain mutable state. *)
  let observe_min_k t doc =
    if t.p_config.track_min_k then begin
      let m =
        Rewriter.minimal_k ~max_k:t.p_config.k (rewriter t) doc
      in
      t.p_min_k_measured <- t.p_min_k_measured + 1;
      let safe_label =
        match m.Rewriter.safe_k with
        | Some k ->
          Hashtbl.replace t.p_min_k k
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.p_min_k k));
          string_of_int k
        | None ->
          t.p_min_k_unbounded <- t.p_min_k_unbounded + 1;
          "over-budget"
      in
      let possible_label =
        match m.Rewriter.possible_k with
        | Some k -> string_of_int k
        | None -> "over-budget"
      in
      Metrics.inc (m_min_k ~kind:"safe" ~k:safe_label);
      Metrics.inc (m_min_k ~kind:"possible" ~k:possible_label);
      if Trace.enabled Trace.default then
        Trace.emit
          (Note
             ("min-k " ^ subject_of doc ^ ": safe=" ^ safe_label
            ^ " possible=" ^ possible_label))
    end

  let enforce t doc =
    let started = wall () in
    observe_min_k t doc;
    record t started
      (enforce_compiled ~config:t.p_config ~compiled:t.p_compiled
         ~invoker:t.p_invoker doc)

  let diff_min_k ~(before : min_k_stats) (after : min_k_stats) =
    { measured = after.measured - before.measured;
      unbounded = after.unbounded - before.unbounded;
      distribution =
        List.filter_map
          (fun (k, n) ->
            let b =
              Option.value ~default:0 (List.assoc_opt k before.distribution)
            in
            if n - b > 0 then Some (k, n - b) else None)
          after.distribution }

  let diff_batch ~(before : stats) (after : stats) =
    let cache = Contract.diff_stats ~before:before.cache after.cache in
    { docs = after.docs - before.docs;
      conformed = after.conformed - before.conformed;
      rewritten = after.rewritten - before.rewritten;
      rewritten_possible = after.rewritten_possible - before.rewritten_possible;
      rejected = after.rejected - before.rejected;
      attempt_failed = after.attempt_failed - before.attempt_failed;
      faults = after.faults - before.faults;
      precluded = after.precluded - before.precluded;
      invocations = after.invocations - before.invocations;
      elapsed_s = after.elapsed_s -. before.elapsed_s;
      docs_per_s =
        (let dt = after.elapsed_s -. before.elapsed_s in
         if dt > 0. then float_of_int (after.docs - before.docs) /. dt else 0.);
      cache;
      cache_hit_rate = Contract.hit_rate cache;
      resilience =
        Resilience.diff_stats ~before:before.resilience after.resilience;
      min_k = diff_min_k ~before:before.min_k after.min_k }

  let enforce_many_seq t docs =
    let before = stats t in
    Metrics.set m_jobs 1.;
    let results = List.map (enforce t) docs in
    (results, diff_batch ~before (stats t))

  (* Grow the clone pool to at least [n] private compiled artifacts.
     Each clone shares the immutable compiled schemas but owns its
     analysis cache, products and validation memos, so a worker domain
     never mutates state another domain reads (see DESIGN.md). *)
  let ensure_clones t n =
    let have = Array.length t.p_clones in
    if n > have then
      t.p_clones <-
        Array.append t.p_clones
          (Array.init (n - have) (fun _ ->
               of_rewriter (Rewriter.of_contract (Contract.clone (contract t)))))

  let enforce_parallel t ~jobs docs =
    let docs = Array.of_list docs in
    let n = Array.length docs in
    (* never spawn more domains than there are documents *)
    let jobs = max 1 (min jobs (max 1 n)) in
    let before = stats t in
    Metrics.set m_jobs (float_of_int jobs);
    ensure_clones t (jobs - 1);
    let results = Array.make n None in
    (* Chunked work stealing off one atomic cursor: chunks are small
       enough (>= 8 per worker) that an unlucky run of slow documents
       cannot straggle one domain, and claiming is one fetch-and-add. *)
    let chunk = max 1 (n / (jobs * 8)) in
    let cursor = Atomic.make 0 in
    let worker compiled () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            results.(i) <-
              Some
                (enforce_compiled ~config:t.p_config ~compiled
                   ~invoker:t.p_invoker docs.(i))
          done;
          loop ()
        end
      in
      loop ()
    in
    let started = wall () in
    (* workers 1..jobs-1 run on fresh domains with their own clone;
       worker 0 runs right here with the shared compiled artifacts *)
    let spawned =
      Array.init (jobs - 1) (fun i ->
          Domain.spawn (worker t.p_clones.(i)))
    in
    worker t.p_compiled ();
    Array.iter Domain.join spawned;
    t.p_elapsed <- t.p_elapsed +. (wall () -. started);
    (* deterministic in-order assembly: slot [i] belongs to input [i].
       Minimal-k observation happens here on the main domain (the
       shared contract's k-keyed cache answers most of it). *)
    let results =
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Some r ->
               observe_min_k t docs.(i);
               tally t r;
               r
             | None -> assert false (* every index below [n] was claimed *))
           results)
    in
    (results, diff_batch ~before (stats t))

  let enforce_many t docs =
    match t.p_config.executor with
    | Sequential -> enforce_many_seq t docs
    | Parallel { jobs } -> enforce_parallel t ~jobs docs

  let enforce_seq t docs = Seq.map (enforce t) docs
end
