(* An ActiveXML peer (Section 7): a repository of intensional documents,
   a set of provided Web services defined declaratively over the
   repository, a registry of remote services it can call, and the Schema
   Enforcement module on every communication path.

   Peers talk through the SOAP wire format of [Soap] even in-process, so
   every exchange exercises the full serialize / parse / validate path.

   All enforcement artifacts are compiled on first use and cached
   against a generation counter that is bumped whenever the peer's
   schema (or its enforcement config) changes: a peer under heavy
   traffic compiles each exchange contract once, not once per message. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Validate = Axml_core.Validate
module Rewriter = Axml_core.Rewriter
module Registry = Axml_services.Registry
module Service = Axml_services.Service
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

let m_sends result =
  Metrics.counter ~help:"Peer-to-peer document exchanges attempted"
    ~labels:[ ("result", result) ]
    "axml_peer_sends_total"

let m_sends_ok = m_sends "ok"
let m_sends_error = m_sends "error"

let m_serves result =
  Metrics.counter ~help:"Locally served calls (params+result enforced)"
    ~labels:[ ("result", result) ]
    "axml_peer_serves_total"

let m_serves_ok = m_serves "ok"
let m_serves_error = m_serves "error"

let h_wire_bytes =
  Metrics.histogram ~help:"Serialized size of exchanged documents in bytes"
    ~buckets:[ 256.; 1024.; 4096.; 16384.; 65536. ]
    "axml_peer_wire_bytes"

exception Peer_error of string

type query =
  | Const of Document.forest
  | Repository_doc of string
      (* return the named repository document *)
  | Repository_path of { doc : string; path : string }
      (* path query over a repository document *)
  | Compute of (Document.forest -> Document.forest)

type provided = {
  p_name : string;
  p_input : Schema.content;
  p_output : Schema.content;
  p_body : query;
  p_cost : float;
}

(* Compiled enforcement artifacts for one direction (parameters or
   result) of a provided service: the wrapper schema, its validation
   context, and — built only when a rewrite is actually needed — the
   rewriter. *)
type io_compiled = {
  io_ctx : Validate.ctx;
  io_rewriter : Rewriter.t Lazy.t;
}

type serve_compiled = { sc_params : io_compiled; sc_result : io_compiled }

type t = {
  name : string;
  mutable schema : Schema.t;  (* the peer's own schema, incl. known WSDLs *)
  repository : (string, Document.t) Hashtbl.t;
  registry : Registry.t;      (* remote services this peer can invoke *)
  provided : (string, provided) Hashtbl.t;
  mutable enforcement : Enforcement.config;
  mutable trusted_peers : string list;
  (* compiled-artifact caches, all validated against [generation] *)
  mutable generation : int;
  mutable send_pipelines : (Schema.t * int * Enforcement.Pipeline.t) list;
  mutable recv_ctxs : (Schema.t * int * Validate.ctx) list;
  serve_cache : (string, int * serve_compiled) Hashtbl.t;
}

let create ?(enforcement = Enforcement.default_config) ~name ~schema () = {
  name;
  schema;
  repository = Hashtbl.create 8;
  registry = Registry.create ~principal:name ();
  provided = Hashtbl.create 8;
  enforcement;
  trusted_peers = [];
  generation = 0;
  send_pipelines = [];
  recv_ctxs = [];
  serve_cache = Hashtbl.create 8;
}

let name t = t.name
let schema t = t.schema
let registry t = t.registry

(* Any change to the peer's schema or enforcement settings invalidates
   every compiled artifact. *)
let invalidate t = t.generation <- t.generation + 1

(* One record for every tunable of the peer; the legacy set_* mutators
   below are thin shims over [configure]. *)
type config = {
  k : int;
  engine : Rewriter.engine;
  fallback_possible : bool;
  eager_calls : (string -> bool) option;
  lint_gate : bool;
  resilience : Axml_services.Resilience.t option;
  jobs : int;
  track_min_k : bool;
}

let default_config =
  let e = Enforcement.default_config in
  { k = e.Enforcement.k;
    engine = e.Enforcement.engine;
    fallback_possible = e.Enforcement.fallback_possible;
    eager_calls = e.Enforcement.eager_calls;
    lint_gate = e.Enforcement.lint_gate;
    resilience = e.Enforcement.resilience;
    jobs = 1;
    track_min_k = e.Enforcement.track_min_k }

let enforcement_of_config (c : config) : Enforcement.config =
  { Enforcement.k = c.k;
    engine = c.engine;
    fallback_possible = c.fallback_possible;
    eager_calls = c.eager_calls;
    lint_gate = c.lint_gate;
    resilience = c.resilience;
    executor =
      (if c.jobs <= 1 then Enforcement.Sequential
       else Enforcement.Parallel { jobs = c.jobs });
    track_min_k = c.track_min_k }

let config_of_enforcement (e : Enforcement.config) : config =
  { k = e.Enforcement.k;
    engine = e.Enforcement.engine;
    fallback_possible = e.Enforcement.fallback_possible;
    eager_calls = e.Enforcement.eager_calls;
    lint_gate = e.Enforcement.lint_gate;
    resilience = e.Enforcement.resilience;
    jobs =
      (match e.Enforcement.executor with
       | Enforcement.Sequential -> 1
       | Enforcement.Parallel { jobs } -> jobs);
    track_min_k = e.Enforcement.track_min_k }

let configure t config =
  t.enforcement <- enforcement_of_config config;
  invalidate t

let current_config t = config_of_enforcement t.enforcement

(* Deprecated shims, kept so existing callers compile: each is a
   read-modify-write through [configure]'s invalidation path. *)
let set_enforcement t config =
  t.enforcement <- config;
  invalidate t

let set_resilience t resilience =
  configure t { (current_config t) with resilience }

let set_jobs t jobs = configure t { (current_config t) with jobs }

let set_schema t schema =
  t.schema <- schema;
  invalidate t

(* ------------------------------------------------------------------ *)
(* Repository                                                          *)
(* ------------------------------------------------------------------ *)

let store t name doc = Hashtbl.replace t.repository name doc

let fetch t name =
  match Hashtbl.find_opt t.repository name with
  | Some doc -> doc
  | None -> raise (Peer_error (Fmt.str "peer %s: no document named %S" t.name name))

let documents t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.repository [] |> List.sort compare

(* Path queries over repository documents go through the XML view of the
   document, so intensional nodes traverse as ordinary <int:fun>
   elements. *)
let select t ~doc ~path : Document.forest =
  let xml = Syntax.to_xml (fetch t doc) in
  Axml_xml.Xml_path.select path xml
  |> List.concat_map (Syntax.xml_to_node Axml_xml.Xml_ns.empty_env)

(* ------------------------------------------------------------------ *)
(* Provided services                                                   *)
(* ------------------------------------------------------------------ *)

let provide t ?(cost = 0.) ~name ~input ~output body =
  Hashtbl.replace t.provided name
    { p_name = name; p_input = input; p_output = output; p_body = body;
      p_cost = cost };
  invalidate t;
  (* the provided service becomes part of the peer's schema (its WSDL) *)
  match Schema.find_function t.schema name with
  | Some _ -> ()
  | None ->
    set_schema t
      (Schema.add_function t.schema
         (Schema.func name ~endpoint:("axml://" ^ t.name) ~input ~output))

let provided_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.provided [] |> List.sort compare

let eval_query t (q : query) (params : Document.forest) : Document.forest =
  match q with
  | Const forest -> forest
  | Repository_doc name -> [ fetch t name ]
  | Repository_path { doc; path } -> select t ~doc ~path
  | Compute f -> f params

(* ------------------------------------------------------------------ *)
(* Compiled-artifact caches                                            *)
(* ------------------------------------------------------------------ *)

let cache_bound = 8

(* Look an entry up in a (key, generation, value) association list by
   physical key equality and current generation; (re)build on miss and
   keep the list bounded. *)
let cached t cache_list set_cache_list key build =
  let live (k, g, _) = k == key && g = t.generation in
  match List.find_opt live (cache_list t) with
  | Some (_, _, v) -> v
  | None ->
    let v = build () in
    let kept =
      List.filteri
        (fun i (_, g, _) -> g = t.generation && i < cache_bound - 1)
        (cache_list t)
    in
    set_cache_list t ((key, t.generation, v) :: kept);
    v

let io_compile t wrapper_name content =
  let s =
    Schema.with_root (Schema.add_element t.schema wrapper_name content)
      wrapper_name
  in
  { io_ctx = Validate.ctx ~env:(Schema.env_of_schema s) s;
    io_rewriter =
      lazy
        (Rewriter.create ~k:t.enforcement.Enforcement.k
           ~engine:t.enforcement.Enforcement.engine ~s0:s ~target:s ()) }

let serve_compiled t (p : provided) =
  match Hashtbl.find_opt t.serve_cache p.p_name with
  | Some (g, sc) when g = t.generation -> sc
  | _ ->
    let sc =
      { sc_params = io_compile t "#params" p.p_input;
        sc_result = io_compile t "#result" p.p_output }
    in
    Hashtbl.replace t.serve_cache p.p_name (t.generation, sc);
    sc

(* The sender-side enforcement pipeline for an exchange schema: compiled
   on first use, reused while neither the peer's schema nor the
   exchange schema object changes. *)
let exchange_pipeline t ~exchange =
  cached t
    (fun t -> t.send_pipelines)
    (fun t v -> t.send_pipelines <- v)
    exchange
    (fun () ->
      Enforcement.Pipeline.create ~config:t.enforcement ~s0:t.schema ~exchange
        ~invoker:(Registry.invoker t.registry) ())

(* Contract-level lint for an exchange agreement, served from the cached
   pipeline (the diagnostics the lint gate would refuse on). *)
let lint_exchange t ~exchange =
  Enforcement.Pipeline.lint (exchange_pipeline t ~exchange)

(* The receiver-side validation context for an exchange schema. *)
let receive_ctx t ~exchange =
  cached t
    (fun t -> t.recv_ctxs)
    (fun t v -> t.recv_ctxs <- v)
    exchange
    (fun () ->
      Validate.ctx ~env:(Schema.env_of_schemas t.schema exchange) exchange)

(* ------------------------------------------------------------------ *)
(* Serving calls                                                       *)
(* ------------------------------------------------------------------ *)

(* Run the three enforcement steps on a forest against one direction's
   wrapper schema. *)
let enforce_io t ~wrapper_name ~what ~method_name (io : io_compiled)
    (forest : Document.forest) : Document.forest =
  let wrapper = Document.elem wrapper_name forest in
  if Validate.violations io.io_ctx wrapper = [] then forest
  else begin
    match
      Rewriter.materialize (Lazy.force io.io_rewriter)
        ~invoker:(Registry.invoker t.registry) wrapper
    with
    | Ok (Document.Elem { children; _ }, _) -> children
    | Ok _ -> raise (Peer_error (what ^ " enforcement changed the wrapper"))
    | Error fs ->
      raise
        (Peer_error
           (Fmt.str "peer %s: %s of %s rejected: %a" t.name what method_name
              Fmt.(list ~sep:(any "; ") Rewriter.pp_failure)
              fs))
  end

(* Serve one call locally, running the Schema Enforcement module on both
   the parameters and the result (Section 7: "before an ActiveXML
   service returns its answer, the module performs the same three steps
   on the returned data"). *)
let serve t ~method_name (params : Document.forest) : Document.forest =
  match Hashtbl.find_opt t.provided method_name with
  | None ->
    Metrics.inc m_serves_error;
    raise (Peer_error (Fmt.str "peer %s provides no service %S" t.name method_name))
  | Some p ->
    match
      Trace.with_span "peer.serve" ~detail:(fun () -> method_name) @@ fun () ->
      let sc = serve_compiled t p in
      (* (i)-(iii) on the parameters, against tau_in *)
      let params =
        enforce_io t ~wrapper_name:"#params" ~what:"parameters" ~method_name
          sc.sc_params params
      in
      let result = eval_query t p.p_body params in
      (* (i)-(iii) on the result, against tau_out *)
      enforce_io t ~wrapper_name:"#result" ~what:"result" ~method_name
        sc.sc_result result
    with
    | result ->
      Metrics.inc m_serves_ok;
      result
    | exception e ->
      Metrics.inc m_serves_error;
      raise e

(* A provided service as a [Service.t] whose behaviour is [serve] — the
   view WSDL description and networked invocation need. *)
let provided_service t name =
  match Hashtbl.find_opt t.provided name with
  | None -> None
  | Some p ->
    Some
      (Service.make
         ~endpoint:("axml://" ^ t.name)
         ~namespace:"urn:axml:peer" ~cost:p.p_cost ~input:p.p_input
         ~output:p.p_output p.p_name
         (fun params -> serve t ~method_name:name params))

(* The SOAP endpoint of the peer: a request envelope in, a response (or
   fault) envelope out. Never raises on bad input: malformed envelopes
   and unsupported protocol versions come back as faults, so a network
   server can pass arbitrary bytes through. *)
let handle_wire t (wire : string) : string =
  match Soap.decode wire with
  | exception Soap.Unsupported_version { got; supported } ->
    Soap.encode
      (Soap.Fault
         { code = "VersionMismatch";
           reason =
             Fmt.str "protocol version %d not supported (this peer speaks <= %d)"
               got supported })
  | exception Soap.Protocol_error m ->
    Soap.encode (Soap.Fault { code = "Client"; reason = m })
  | Soap.Request { method_name; params } ->
    (try Soap.encode (Soap.Response { method_name; result = serve t ~method_name params })
     with
     | Peer_error m -> Soap.encode (Soap.Fault { code = "Client"; reason = m })
     | e ->
       Soap.encode
         (Soap.Fault { code = "Server"; reason = Printexc.to_string e }))
  | Soap.Response _ | Soap.Fault _ ->
    Soap.encode (Soap.Fault { code = "Client"; reason = "expected a request" })

(* ------------------------------------------------------------------ *)
(* Connecting peers                                                    *)
(* ------------------------------------------------------------------ *)

(* Make every service provided by [provider] callable from [t]: the
   proxy serializes through SOAP so the exchange is a faithful
   simulation of the wire protocol. Also imports the provider's WSDL
   declarations (function signature + referenced element types) into
   [t]'s schema. *)
let connect t ~(provider : t) =
  Hashtbl.iter
    (fun name (p : provided) ->
      let behaviour params =
        let wire = Soap.encode (Soap.Request { method_name = name; params }) in
        match Soap.decode (handle_wire provider wire) with
        | Soap.Response { result; _ } -> result
        | Soap.Fault { reason; _ } ->
          raise (Peer_error (Fmt.str "remote fault from %s: %s" provider.name reason))
        | Soap.Request _ -> raise (Peer_error "protocol violation")
      in
      let service =
        Service.make
          ~endpoint:("axml://" ^ provider.name)
          ~namespace:"urn:axml:peer" ~cost:p.p_cost ~input:p.p_input
          ~output:p.p_output name behaviour
      in
      Registry.register t.registry service;
      (* import the WSDL declaration *)
      (match Schema.find_function t.schema name with
       | Some _ -> ()
       | None -> set_schema t (Schema.add_function t.schema (Service.declaration service))))
    provider.provided;
  (* element types used by the provider's signatures *)
  List.iter
    (fun l ->
      match Schema.find_element t.schema l, Schema.find_element provider.schema l with
      | None, Some c -> set_schema t (Schema.add_element t.schema l c)
      | Some _, _ | None, None -> ())
    (Schema.element_names provider.schema);
  invalidate t

(* Call a connected service by name, through the registry (and thus
   through SOAP). *)
let call t name params = Registry.invoke t.registry name params

(* The wire-level counterpart of [connect] for one service: a networked
   proxy plus its parsed WSDL declaration. *)
let register_remote t ~service ~declaration =
  Registry.register t.registry service;
  set_schema t (Wsdl.import t.schema declaration)

(* ------------------------------------------------------------------ *)
(* Document exchange                                                   *)
(* ------------------------------------------------------------------ *)

type exchange_outcome = {
  sent : Document.t;             (* what went on the wire *)
  report : Enforcement.report;   (* the sender-side enforcement report *)
  wire_bytes : int;
}

(* Send [doc] to [receiver] under the agreed [exchange] schema: the
   sender's enforcement module materializes what must be materialized,
   the document crosses the (simulated) wire in XML, and the receiver
   validates before storing it under [as_name].

   With no [predicate], both sides reuse their cached compiled
   artifacts (sender pipeline, receiver validation context); a
   [predicate] is an arbitrary closure, so those calls compile fresh. *)
(* The receiver-side half of an exchange — shared by [send] and the
   network endpoint: parse the XML wire bytes, validate against the
   exchange schema (never trust the sender), store the document. *)
let receive t ~exchange ?predicate ~as_name (wire : string) :
    (Document.t, Enforcement.error) result =
  let rejected failures = Error (Enforcement.Rejected failures) in
  match Syntax.of_xml_string wire with
  | exception Syntax.Syntax_error m ->
    rejected
      [ { Rewriter.at = [];
          reason =
            Rewriter.Unsafe_word { context = "malformed document: " ^ m; word = [] } } ]
  | received ->
    let ctx =
      match predicate with
      | None -> receive_ctx t ~exchange
      | Some _ ->
        Validate.ctx ~env:(Schema.env_of_schemas ?predicate t.schema exchange)
          exchange
    in
    (match Validate.document_violations ctx received with
     | [] ->
       store t as_name received;
       Ok received
     | violations ->
       rejected
         (List.map
            (fun v ->
              { Rewriter.at = v.Validate.at;
                reason =
                  Rewriter.Unsafe_word
                    { context = Fmt.str "%a" Validate.pp_violation_kind v.Validate.kind;
                      word = [] } })
            violations))

let send t ~(receiver : t) ~exchange ?predicate ~as_name doc :
    (exchange_outcome, Enforcement.error) result =
  let outcome =
    Trace.with_span "peer.send"
      ~detail:(fun () -> Fmt.str "%s -> %s" t.name receiver.name)
    @@ fun () ->
  let enforced =
    match predicate with
    | None -> Enforcement.Pipeline.enforce (exchange_pipeline t ~exchange) doc
    | Some _ ->
      Enforcement.enforce ~config:t.enforcement ?predicate ~s0:t.schema ~exchange
        ~invoker:(Registry.invoker t.registry) doc
  in
  match enforced with
  | Error e -> Error e
  | Ok (doc', report) ->
    let wire = Syntax.to_xml_string ~pretty:false doc' in
    (match receive receiver ~exchange ?predicate ~as_name wire with
     | Ok _ -> Ok { sent = doc'; report; wire_bytes = String.length wire }
     | Error e -> Error e)
  in
  (match outcome with
   | Ok { wire_bytes; _ } ->
     Metrics.inc m_sends_ok;
     Metrics.observe h_wire_bytes (float_of_int wire_bytes)
   | Error _ -> Metrics.inc m_sends_error);
  outcome
