(** WSDL_int descriptors (Section 7): self-contained XML descriptions of
    a service's intensional signature — the function declaration plus
    the transitively referenced element types, so the receiving peer can
    type-check calls without any other context. *)

exception Wsdl_error of string

val referenced_labels :
  Axml_schema.Schema.t -> Axml_schema.Schema.content list -> string list

val describe :
  types:Axml_schema.Schema.t -> Axml_services.Service.t -> Axml_xml.Xml_tree.t
(** The descriptor carries every transitively referenced element type,
    plus the declaration of every function those types embed
    (intensional element types), so it stays self-contained.
    @raise Wsdl_error when a referenced type is missing from [types]. *)

val describe_string :
  ?pretty:bool -> types:Axml_schema.Schema.t -> Axml_services.Service.t -> string

val parse :
  ?service:string ->
  Axml_xml.Xml_tree.t -> Axml_schema.Schema.func * Axml_schema.Schema.t
(** The described function's declaration and the types the descriptor
    carries. [service] names the described function when the descriptor
    also carries auxiliary function declarations; without it a
    several-function descriptor is an error. *)

val parse_string :
  ?service:string -> string -> Axml_schema.Schema.func * Axml_schema.Schema.t

val import :
  Axml_schema.Schema.t ->
  Axml_schema.Schema.func * Axml_schema.Schema.t ->
  Axml_schema.Schema.t
(** Add the function, any missing element types and any auxiliary
    function declarations to a schema; existing element declarations
    win. @raise Wsdl_error on a function signature conflict. *)
