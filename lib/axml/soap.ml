(* SOAP-style envelopes for peer-to-peer exchanges: every call between
   peers serializes its (possibly intensional) parameters and results
   through this wire format, exercising the same marshalling path a real
   ActiveXML deployment would. *)

module D = Axml_core.Document
module T = Axml_xml.Xml_tree

let soap_ns = "http://schemas.xmlsoap.org/soap/envelope/"

(* Version 1 is the historical unversioned envelope; version 2 stamps
   [int:protocol] on the envelope root so peers across a real wire can
   detect (and cleanly reject) an envelope dialect they do not speak. *)
let protocol_version = 2

exception Protocol_error of string
exception Unsupported_version of { got : int; supported : int }

type message =
  | Request of { method_name : string; params : D.forest }
  | Response of { method_name : string; result : D.forest }
  | Fault of { code : string; reason : string }

let envelope ~version body =
  T.element
    ~attrs:[ T.attr "xmlns:soap" soap_ns; T.attr "xmlns:int" Syntax.axml_ns;
             T.attr "int:protocol" (string_of_int version) ]
    "soap:Envelope"
    [ T.element "soap:Body" [ body ] ]

let wrap_forest tag (forest : D.forest) =
  T.element tag
    (List.map (fun d -> Syntax.node_to_xml ~locate:Syntax.default_locator d) forest)

let encode ?(version = protocol_version) message : string =
  let body =
    match message with
    | Request { method_name; params } ->
      T.element ~attrs:[ T.attr "method" method_name ] "int:request"
        [ wrap_forest "int:args" params ]
    | Response { method_name; result } ->
      T.element ~attrs:[ T.attr "method" method_name ] "int:response"
        [ wrap_forest "int:result" result ]
    | Fault { code; reason } ->
      T.element "soap:Fault"
        [ T.element "faultcode" [ T.text code ];
          T.element "faultstring" [ T.text reason ] ]
  in
  Axml_xml.Xml_print.to_string (envelope ~version body)

let forest_of_children env children : D.forest =
  List.concat_map (Syntax.xml_to_node env) children

(* The declared version of an envelope element: the [int:protocol]
   attribute, or 1 for the historical unversioned envelope. *)
let version_of_root root =
  match T.attr_value root "int:protocol" with
  | None -> Some 1
  | Some v ->
    (match int_of_string_opt (String.trim v) with
     | Some v when v >= 1 -> Some v
     | _ -> None)

let wire_version (wire : string) : int option =
  match Axml_xml.Xml_parser.parse_result wire with
  | Error _ -> None
  | Ok (T.Element root) -> version_of_root root
  | Ok _ -> None

let decode (wire : string) : message =
  let tree =
    match Axml_xml.Xml_parser.parse_result wire with
    | Ok t -> t
    | Error e -> raise (Protocol_error ("malformed envelope: " ^ e))
  in
  let root = match tree with
    | T.Element e -> e
    | _ -> raise (Protocol_error "envelope is not an element")
  in
  (match version_of_root root with
   | None -> raise (Protocol_error "malformed int:protocol version")
   | Some got when got > protocol_version ->
     raise (Unsupported_version { got; supported = protocol_version })
   | Some _ -> ());
  let env = Axml_xml.Xml_ns.extend Axml_xml.Xml_ns.empty_env root in
  let body =
    match T.child_element root "soap:Body" with
    | Some b -> b
    | None -> raise (Protocol_error "no soap:Body")
  in
  match T.child_elements body with
  | [ { T.name = "int:request"; _ } as e ] ->
    let method_name =
      match T.attr_value e "method" with
      | Some m -> m
      | None -> raise (Protocol_error "request without a method")
    in
    let params =
      match T.child_element e "int:args" with
      | Some args -> forest_of_children env args.T.children
      | None -> []
    in
    Request { method_name; params }
  | [ { T.name = "int:response"; _ } as e ] ->
    let method_name =
      match T.attr_value e "method" with
      | Some m -> m
      | None -> raise (Protocol_error "response without a method")
    in
    let result =
      match T.child_element e "int:result" with
      | Some r -> forest_of_children env r.T.children
      | None -> []
    in
    Response { method_name; result }
  | [ { T.name = "soap:Fault"; _ } as e ] ->
    let text name =
      match T.child_element e name with
      | Some el -> T.text_content el
      | None -> ""
    in
    Fault { code = text "faultcode"; reason = text "faultstring" }
  | _ -> raise (Protocol_error "unrecognized body")
