(** SOAP-style envelopes for peer-to-peer exchanges: every call between
    peers serializes its (possibly intensional) parameters and results
    through this wire format. *)

val soap_ns : string

val protocol_version : int
(** The envelope protocol version this library speaks (and stamps on
    every encoded envelope as an [int:protocol] attribute). Version 1
    is the historical unversioned envelope; decoding accepts every
    version up to [protocol_version]. *)

exception Protocol_error of string

exception Unsupported_version of { got : int; supported : int }
(** A well-formed envelope declaring a protocol version this peer does
    not speak — distinct from {!Protocol_error} so wire peers can
    negotiate or reject cleanly (a typed ["VersionMismatch"] fault)
    instead of treating it as a generic decode failure. *)

type message =
  | Request of { method_name : string; params : Axml_core.Document.forest }
  | Response of { method_name : string; result : Axml_core.Document.forest }
  | Fault of { code : string; reason : string }

val encode : ?version:int -> message -> string
(** [version] (default {!protocol_version}) is stamped on the envelope;
    pass an explicit value only to test version negotiation. *)

val decode : string -> message
(** @raise Protocol_error on malformed envelopes.
    @raise Unsupported_version when the envelope declares a version
    above {!protocol_version} (an envelope without the attribute is
    version 1). *)

val wire_version : string -> int option
(** The protocol version a wire envelope declares ([Some 1] for a
    legacy unversioned envelope), or [None] when the bytes are not an
    envelope at all — a cheap pre-flight peek for negotiation. *)
