(* WSDL_int descriptors (Section 7): self-contained XML descriptions of a
   service's intensional signature. A descriptor is an XML Schema_int
   document holding the <function> declaration plus the (transitively)
   referenced element types, so the receiving peer can type-check calls
   without any other context. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module T = Axml_xml.Xml_tree
module Service = Axml_services.Service

exception Wsdl_error of string

(* Element labels and function names referenced transitively by
   [contents] in [types]: the closure is joint, since an element type
   may embed a function call whose own signature references further
   element types (intensional types, Section 7). *)
let referenced_names (types : Schema.t) contents =
  let labels = ref Schema.String_set.empty in
  let funs = ref Schema.String_set.empty in
  let rec visit_content c =
    List.iter
      (fun atom ->
        match atom with
        | Schema.A_label l -> visit_label l
        | Schema.A_fun f -> visit_fun f
        | Schema.A_pattern _ | Schema.A_data
        | Schema.A_any_element | Schema.A_any_fun -> ())
      (Schema.atoms_of_content c)
  and visit_label l =
    if not (Schema.String_set.mem l !labels) then begin
      labels := Schema.String_set.add l !labels;
      match Schema.find_element types l with
      | Some c -> visit_content c
      | None -> ()
    end
  and visit_fun f =
    if not (Schema.String_set.mem f !funs) then begin
      funs := Schema.String_set.add f !funs;
      match Schema.find_function types f with
      | Some fn -> visit_content fn.Schema.f_input; visit_content fn.Schema.f_output
      | None -> ()
    end
  in
  List.iter visit_content contents;
  (Schema.String_set.elements !labels, Schema.String_set.elements !funs)

let referenced_labels (types : Schema.t) contents =
  fst (referenced_names types contents)

(* The WSDL_int document of [service], with element types drawn from
   [types]. Function declarations referenced by those types ride along,
   so a descriptor with intensional element types stays self-contained
   (it must pass [Schema.check] on the receiving peer). *)
let describe ~(types : Schema.t) (service : Service.t) : T.t =
  let decl = Service.declaration service in
  let labels, funs =
    referenced_names types [ decl.Schema.f_input; decl.Schema.f_output ]
  in
  let schema =
    List.fold_left
      (fun s l ->
        match Schema.find_element types l with
        | Some c -> Schema.add_element s l c
        | None -> raise (Wsdl_error (Fmt.str "type %S is not declared" l)))
      Schema.empty labels
  in
  let schema =
    List.fold_left
      (fun s f ->
        if f = decl.Schema.f_name then s
        else
          match Schema.find_function types f with
          | Some fn -> Schema.add_function s fn
          | None ->
            raise (Wsdl_error (Fmt.str "function type %S is not declared" f)))
      schema funs
  in
  let schema = Schema.add_function schema decl in
  Xml_schema_int.to_xml schema

let describe_string ?(pretty = true) ~types service =
  let xml = describe ~types service in
  if pretty then Axml_xml.Xml_print.to_pretty_string ~xml_decl:true xml
  else Axml_xml.Xml_print.to_string xml

(* Parse a WSDL_int descriptor back into the function declaration plus
   the types it carries. [service] picks the described function when the
   descriptor also carries auxiliary declarations referenced by its
   intensional element types. *)
let parse ?service (tree : T.t) : Schema.func * Schema.t =
  let schema =
    try Xml_schema_int.of_xml tree
    with Xml_schema_int.Schema_syntax_error m -> raise (Wsdl_error m)
  in
  let name =
    match (service, Schema.function_names schema) with
    | _, [] -> raise (Wsdl_error "descriptor declares no function")
    | Some s, names ->
      if List.mem s names then s
      else raise (Wsdl_error (Fmt.str "descriptor does not declare %S" s))
    | None, [ name ] -> name
    | None, _ ->
      raise
        (Wsdl_error
           "descriptor declares several functions (name the service to \
            disambiguate)")
  in
  match Schema.find_function schema name with
  | Some f -> (f, schema)
  | None -> assert false

let parse_string ?service input =
  match Axml_xml.Xml_parser.parse_result input with
  | Ok tree -> parse ?service tree
  | Error e -> raise (Wsdl_error ("malformed XML: " ^ e))

(* Import a parsed descriptor into a schema: add the function, any
   missing element types and any auxiliary function declarations the
   descriptor carries (existing element declarations win; a function
   redeclared with another signature is a conflict). *)
let import (schema : Schema.t) (f, types) =
  let schema =
    List.fold_left
      (fun s l ->
        match Schema.find_element s l, Schema.find_element types l with
        | Some _, _ -> s
        | None, Some c -> Schema.add_element s l c
        | None, None -> s)
      schema (Schema.element_names types)
  in
  let add_function s (g : Schema.func) =
    match Schema.find_function s g.Schema.f_name with
    | Some existing ->
      if R.equal (fun a b -> a = b) existing.Schema.f_input g.Schema.f_input
         && R.equal (fun a b -> a = b) existing.Schema.f_output g.Schema.f_output
      then s
      else
        raise
          (Wsdl_error
             (Fmt.str "function %S is already declared with another signature"
                g.Schema.f_name))
    | None -> Schema.add_function s g
  in
  let schema =
    List.fold_left
      (fun s name ->
        match Schema.find_function types name with
        | Some g when name <> f.Schema.f_name -> add_function s g
        | _ -> s)
      schema (Schema.function_names types)
  in
  add_function schema f
