(** The Schema Enforcement module (Section 7): the component on every
    peer's communication path that guarantees exchanged data matches the
    agreed schema. Its three steps: (i) verify; (ii) if needed, rewrite —
    safely, optionally falling back to a possible rewriting, optionally
    pre-firing cheap calls (mixed); (iii) otherwise report an error.

    Enforcement guards a {e path}, not a document: the same (s0,
    exchange) pair is enforced against streams of documents. {!Pipeline}
    compiles the pair once (validation context + exchange
    {!Axml_core.Contract}) and amortizes the static analysis across the
    stream; {!enforce} stays as the one-shot entry point and accepts a
    prebuilt rewriter for callers that manage their own contracts. *)

type executor =
  | Sequential  (** one document after another, on the calling domain *)
  | Parallel of { jobs : int }
    (** shard each batch across [jobs] OCaml domains (clamped to at
        least 1, and to the batch size). Results keep input order.
        {b The invoker must be thread-safe}: workers call it
        concurrently. The built-in {!Axml_services.Oracle} behaviours
        and {!Axml_services.Registry.invoke} are; a hand-rolled invoker
        closing over unguarded mutable state is not. *)

type config = {
  k : int;
  engine : Axml_core.Rewriter.engine;
  fallback_possible : bool;
    (** attempt a possible rewriting when no safe one exists *)
  eager_calls : (string -> bool) option;
    (** mixed approach: services to invoke up-front (Section 5) *)
  resilience : Axml_services.Resilience.t option;
    (** wrap every invocation in a retry/timeout/circuit-breaker guard;
        the guard's counters surface in {!Pipeline.stats} *)
  lint_gate : bool;
    (** refuse statically-doomed work before validating or invoking
        anything: a contract whose lint ({!Axml_analysis.Lint}) carries
        error-level diagnostics precludes every document; a document
        whose calls lint at error level is precluded individually.
        Warnings and hints never block. *)
  executor : executor;
    (** how {!Pipeline.enforce_many} runs a batch (default
        {!Sequential}) *)
  track_min_k : bool;
    (** also search, per document, for the smallest rewriting depth at
        which its static check would pass ({!Axml_core.Rewriter.minimal_k},
        bounded by [k]) and surface the distribution in
        {!Pipeline.stats}, the [axml_enforce_min_k_total] metric and
        trace notes — a capacity-planning signal ("would k=1 have been
        enough for this traffic?"). Off by default: the search costs
        extra (cached) analyses at depths below [k]. *)
}

val default_config : config
(** [k = 1], lazy engine, no fallback, no eager calls, no resilience
    guard, no lint gate, sequential executor, no min-k tracking. *)

type action =
  | Conformed           (** already an instance, nothing invoked *)
  | Rewritten           (** safe rewriting *)
  | Rewritten_possible  (** possible rewriting that succeeded *)

type report = {
  action : action;
  invocations : Axml_core.Rewriter.located_invocation list;
}

type error =
  | Rejected of Axml_core.Rewriter.failure list
    (** step (iii): the document is not rewritable under this config *)
  | Attempt_failed of Axml_core.Rewriter.failure list
    (** a possible rewriting failed at run time *)
  | Service_fault of Axml_core.Rewriter.failure list
    (** the environment's fault, not the document's: a service broke its
        output contract, failed past its retry policy, or an engine
        invariant was violated (see
        {!Axml_core.Rewriter.failure_is_fault}). The document may well
        enforce cleanly once the services recover; batch pipelines count
        these separately and keep going. *)
  | Precluded of Axml_analysis.Diagnostic.t list
    (** the lint gate ([config.lint_gate]) refused up front: static
        analysis proved the exchange (or this document) can never
        succeed, so nothing was validated and no service was invoked *)

val pp_error : error Fmt.t

val enforce :
  ?config:config -> ?predicate:(string -> string -> bool) ->
  ?rewriter:Axml_core.Rewriter.t ->
  s0:Axml_schema.Schema.t -> exchange:Axml_schema.Schema.t ->
  invoker:Axml_core.Execute.invoker -> Axml_core.Document.t ->
  (Axml_core.Document.t * report, error) result
(** One-shot enforcement. Without [rewriter], the schema pair is
    compiled from scratch on every call; pass [rewriter] (built for the
    {e same} [s0]/[exchange]/[predicate], e.g. via
    {!Axml_core.Rewriter.of_contract}) to reuse a compiled contract —
    [config.k] and [config.engine] are then taken from the contract,
    and [s0]/[exchange] are trusted to match it. For whole streams,
    prefer {!Pipeline}. *)

(** {1 Batch enforcement}

    A pipeline owns every per-path artifact — the compiled exchange
    contract (with its analysis memo table) and the validation context —
    plus running counters, so peer-to-peer exchange pays the static
    analysis once per distinct children word instead of once per
    document. *)

module Pipeline : sig
  type t

  val create :
    ?config:config -> ?predicate:(string -> string -> bool) ->
    s0:Axml_schema.Schema.t -> exchange:Axml_schema.Schema.t ->
    invoker:Axml_core.Execute.invoker -> unit -> t
  (** Compile once for the (s0, exchange) path.
      @raise Axml_schema.Schema.Schema_error as {!Axml_core.Rewriter.create}. *)

  val of_contract :
    ?config:config -> invoker:Axml_core.Execute.invoker ->
    Axml_core.Contract.t -> t
  (** Drive an existing contract (shares its analysis cache);
      [config.k] / [config.engine] are ignored — the contract fixes
      them. *)

  val contract : t -> Axml_core.Contract.t
  val rewriter : t -> Axml_core.Rewriter.t
  val config : t -> config

  val lint : t -> Axml_analysis.Diagnostic.t list
  (** Contract-level lint diagnostics for this path (AXM020–AXM023),
      computed once per pipeline on first use and cached with the
      compiled artifacts — also what the lint gate consults. *)

  val enforce : t -> Axml_core.Document.t ->
    (Axml_core.Document.t * report, error) result
  (** The three steps of {!enforce}, against the precompiled artifacts;
      updates the pipeline counters. *)

  type min_k_stats = {
    measured : int;    (** documents the minimal-k search ran on *)
    distribution : (int * int) list;
      (** [(minimal safe depth, documents)] pairs, ascending in depth;
          depth 0 means the document already conformed statically *)
    unbounded : int;
      (** documents with no safe depth within [config.k] *)
  }

  type stats = {
    docs : int;
    conformed : int;
    rewritten : int;
    rewritten_possible : int;
    rejected : int;
    attempt_failed : int;
    faults : int;                (** documents that hit a service fault *)
    precluded : int;             (** documents refused by the lint gate *)
    invocations : int;
    elapsed_s : float;
      (** wall-clock seconds spent enforcing (the injectable
          [Axml_obs.Metrics] clock); for a parallel batch this is the
          batch's wall time, not the per-domain sum *)
    docs_per_s : float;
    cache : Axml_core.Contract.stats;  (** contract-cache activity *)
    cache_hit_rate : float;
    resilience : Axml_services.Resilience.stats;
      (** retry/breaker activity of [config.resilience] over the same
          window (all-zero without a guard) *)
    min_k : min_k_stats;
      (** the minimal-k distribution of the window (all-zero unless
          [config.track_min_k]) *)
  }

  val pp_stats : stats Fmt.t

  val enforce_many :
    t -> Axml_core.Document.t list ->
    (Axml_core.Document.t * report, error) result list * stats
  (** Enforce a batch; the returned stats cover exactly this batch.
      Dispatches on [config.executor]: {!Sequential} enforces in order
      on the calling domain, [Parallel {jobs}] behaves like
      {!enforce_parallel}. *)

  val enforce_parallel :
    t -> jobs:int -> Axml_core.Document.t list ->
    (Axml_core.Document.t * report, error) result list * stats
  (** Enforce a batch on [jobs] domains (clamped to at least 1 and to
      the batch size): documents are claimed in chunks off an atomic
      cursor, each worker domain enforces against its own
      {!Axml_core.Contract.clone} of the compiled artifacts (worker 0
      reuses the shared ones), and results are assembled in input
      order — for deterministic services the result list is identical
      to the sequential one. Clones persist on the pipeline, so
      repeated batches keep their analysis caches warm; {!stats}
      reports the shared cache plus all clones, and [elapsed_s] grows
      by the batch's wall time. The pipeline's invoker (and
      [config.resilience] guard) are shared across workers — the
      invoker must be thread-safe, and a circuit breaker opened by one
      domain short-circuits the others. *)

  val enforce_seq :
    t -> Axml_core.Document.t Seq.t ->
    (Axml_core.Document.t * report, error) result Seq.t
  (** Lazy element-wise enforcement of a stream; counters accumulate as
      the result sequence is consumed. *)

  val stats : t -> stats
  (** Cumulative since creation (or the last {!reset_stats}). *)

  val reset_stats : t -> unit
  (** Zero the counters (cached analyses stay resident). *)
end
