(** A compact textual syntax for schemas, mirroring the paper's
    notation:

    {v
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit* )
element title = #data
function Get_Temp : city -> temp
noninvocable function TimeOut : #data -> (exhibit | performance)*
pattern Forecast requires UDDIF InACL : city -> temp
    v}

    Lines starting with ['#'] and blank lines are ignored. Names used in
    content models resolve to functions or patterns when declared as
    such anywhere in the file, otherwise to element labels. The
    XML-syntax schemas of Section 7 are handled by
    [Axml_peer.Xml_schema_int].

    Errors carry full source positions: 1-based line and column, with
    offsets reported inside regular-expression bodies translated back to
    columns of the original line. *)

exception Parse_error of { line : int; col : int; message : string }

type pos = { line : int; col : int }
(** A 1-based source position. *)

val parse : string -> Schema.t
(** @raise Parse_error (line 0 carries whole-schema errors). *)

val parse_with_positions : string -> Schema.t * pos Schema.String_map.t
(** As {!parse}, also returning where each element / function / pattern
    declaration's name sits in the source (first declaration wins), so
    downstream diagnostics can point at it. *)

val parse_result : string -> (Schema.t, string) result
(** Errors render as ["line L, col C: ..."] (or ["schema: ..."] for
    whole-schema errors). *)
