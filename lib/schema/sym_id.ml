(* Dense integer codes for schema symbols, backed by the process-wide
   string interner. The coding is positional so it never collides and
   needs no per-symbol table:

     Data      -> 0
     Label l   -> 2 * intern l + 1
     Fun f     -> 2 * intern f + 2

   Every id is >= 0, ids are stable for the process lifetime, and the
   same label/function name gets the same id in every domain (the
   interner is shared), which is what lets dense DFA tables compiled in
   one domain be stepped from another. *)

module I = Axml_regex.Interner

let interner = I.global

let data = 0
let of_label l = (2 * I.intern interner l) + 1
let of_fun f = (2 * I.intern interner f) + 2

let of_symbol = function
  | Symbol.Data -> 0
  | Symbol.Label l -> of_label l
  | Symbol.Fun f -> of_fun f

let to_symbol id =
  if id = 0 then Symbol.Data
  else begin
    let s = I.to_string interner ((id - 1) / 2) in
    if id land 1 = 1 then Symbol.Label s else Symbol.Fun s
  end

let of_word w = Array.of_list (List.map of_symbol w)

(* A cheap, collision-stable hash for children words: folds the dense
   ids, so hashing a word costs one interner hit per symbol instead of
   a structural traversal of strings. *)
let hash_word w =
  List.fold_left
    (fun h sym -> (h * 0x01000193) lxor of_symbol sym)
    0x811c9dc5 w
  land max_int
