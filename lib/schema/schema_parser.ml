(* A compact textual syntax for schemas, mirroring the paper's notation:

     root newspaper
     element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit* )
     element title = #data
     function Get_Temp : city -> temp
     noninvocable function TimeOut : #data -> (exhibit | performance)*
     pattern Forecast requires UDDIF InACL : city -> temp

   Lines starting with '#' (after trimming) and blank lines are ignored.
   Names used in content models resolve to functions or patterns when
   declared as such anywhere in the file, otherwise to element labels.
   The XML-syntax schemas of Section 7 are handled separately by the
   Active XML layer (Xml_schema_int).

   The parser tracks source positions: every declaration remembers the
   1-based column of its name and of each regular-expression body, so
   parse errors point at line AND column (offsets inside a regex body
   are translated back to columns of the original line) and the
   diagnostics layer can attach file:line:col locations to the names it
   reports on ([parse_with_positions]). *)

exception Parse_error of { line : int; col : int; message : string }

let fail ?(col = 1) line message = raise (Parse_error { line; col; message })

type pos = { line : int; col : int }

(* Raw declarations; [*_col] fields are 1-based columns in the source
   line (name of the declaration, start of each regex text). *)
type raw_decl =
  | D_root of { name : string; name_col : int }
  | D_element of { name : string; name_col : int; body : string; body_col : int }
  | D_function of
      { name : string; name_col : int;
        input : string; input_col : int;
        output : string; output_col : int;
        invocable : bool }
  | D_pattern of
      { name : string; name_col : int; predicates : string list;
        input : string; input_col : int;
        output : string; output_col : int;
        invocable : bool }

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let is_ws c = c = ' ' || c = '\t' || c = '\r'

let skip_ws s i =
  let n = String.length s in
  let rec go i = if i < n && is_ws s.[i] then go (i + 1) else i in
  go i

let word_end s i =
  let n = String.length s in
  let rec go i = if i < n && not (is_ws s.[i]) then go (i + 1) else i in
  go i

(* Trimmed substring of s[a..b) together with the index its text starts
   at (equals [b] when the slice is all whitespace). *)
let trimmed_sub s a b =
  let a = skip_ws s a in
  let rec back b = if b > a && is_ws s.[b - 1] then back (b - 1) else b in
  let b = back b in
  (String.sub s a (b - a), a)

(* First occurrence of "->" at or after [start]. *)
let find_arrow lineno line start =
  let n = String.length line in
  let rec go i =
    if i + 1 >= n then fail ~col:(n + 1) lineno "expected '->' in signature"
    else if line.[i] = '-' && line.[i + 1] = '>' then i
    else go (i + 1)
  in
  go start

let parse_decl lineno line : raw_decl option =
  let n = String.length line in
  let col i = i + 1 in
  let i0 = skip_ws line 0 in
  if i0 >= n || line.[i0] = '#' then None
  else begin
    let w1_end = word_end line i0 in
    let invocable, kw_start =
      if String.sub line i0 (w1_end - i0) = "noninvocable" then
        (false, skip_ws line w1_end)
      else (true, i0)
    in
    let kw_end = word_end line kw_start in
    let kw = String.sub line kw_start (kw_end - kw_start) in
    let signature_parts after_colon =
      let arrow = find_arrow lineno line after_colon in
      let input, input_i = trimmed_sub line after_colon arrow in
      let output, output_i = trimmed_sub line (arrow + 2) n in
      (input, col input_i, output, col output_i)
    in
    match kw with
    | "" -> None
    | "root" ->
      let rest, rest_i = trimmed_sub line kw_end n in
      (match split_words rest with
       | [ name ] -> Some (D_root { name; name_col = col rest_i })
       | _ -> fail ~col:(col kw_start) lineno "root takes exactly one name")
    | "element" ->
      (match String.index_from_opt line kw_end '=' with
       | None -> fail ~col:(col kw_start) lineno "element declaration needs '='"
       | Some eq ->
         let name, name_i = trimmed_sub line kw_end eq in
         let body, body_i = trimmed_sub line (eq + 1) n in
         if name = "" then
           fail ~col:(col kw_start) lineno "element declaration needs a name";
         Some (D_element { name; name_col = col name_i; body; body_col = col body_i }))
    | "function" ->
      (match String.index_from_opt line kw_end ':' with
       | None ->
         fail ~col:(col kw_start) lineno "expected ':' before the signature"
       | Some c ->
         let name, name_i = trimmed_sub line kw_end c in
         let input, input_col, output, output_col = signature_parts (c + 1) in
         if name = "" then
           fail ~col:(col kw_start) lineno "function declaration needs a name";
         Some (D_function { name; name_col = col name_i; input; input_col;
                            output; output_col; invocable }))
    | "pattern" ->
      (match String.index_from_opt line kw_end ':' with
       | None ->
         fail ~col:(col kw_start) lineno "expected ':' before the signature"
       | Some c ->
         let head, head_i = trimmed_sub line kw_end c in
         let input, input_col, output, output_col = signature_parts (c + 1) in
         let name, predicates =
           match split_words head with
           | name :: "requires" :: preds when preds <> [] -> (name, preds)
           | [ name ] -> (name, [])
           | _ ->
             fail ~col:(col kw_start) lineno
               "malformed pattern head (use: pattern NAME [requires P..] : IN -> OUT)"
         in
         Some (D_pattern { name; name_col = col head_i; predicates;
                           input; input_col; output; output_col; invocable }))
    | word -> fail ~col:(col kw_start) lineno (Fmt.str "unknown declaration %S" word)
  end

(* Offsets reported by the regex parser are relative to the body text,
   which starts at [col] of its line: translate them back. *)
let parse_regex lineno col text =
  match Axml_regex.Regex_parser.parse text with
  | r -> r
  | exception Axml_regex.Regex_parser.Error { pos; message } ->
    fail ~col:(col + pos) lineno (Fmt.str "bad regular expression: %s" message)

(* [parse_with_positions input] parses a whole schema file, also
   returning where each declaration's name sits in the source. *)
let parse_with_positions input : Schema.t * pos Schema.String_map.t =
  let lines = String.split_on_char '\n' input in
  let decls =
    List.concat
      (List.mapi
         (fun i line ->
           match parse_decl (i + 1) line with
           | Some d -> [ (i + 1, d) ]
           | None -> [])
         lines)
  in
  (* Pass 1: which names are functions / patterns? *)
  let functions, patterns =
    List.fold_left
      (fun (fs, ps) (_, d) ->
        match d with
        | D_function { name; _ } -> (Schema.String_set.add name fs, ps)
        | D_pattern { name; _ } -> (fs, Schema.String_set.add name ps)
        | D_root _ | D_element _ -> (fs, ps))
      (Schema.String_set.empty, Schema.String_set.empty)
      decls
  in
  let resolve lineno col text =
    Schema.resolve_content ~functions ~patterns (parse_regex lineno col text)
  in
  (* Pass 2: build the schema and the source map. *)
  let schema, positions =
    List.fold_left
      (fun (s, posmap) (lineno, d) ->
        let declare name name_col build =
          let posmap =
            if Schema.String_map.mem name posmap then posmap
            else Schema.String_map.add name { line = lineno; col = name_col } posmap
          in
          try (build (), posmap)
          with Schema.Schema_error e ->
            fail ~col:name_col lineno (Fmt.str "%a" Schema.pp_error e)
        in
        match d with
        | D_root { name; name_col } ->
          (try (Schema.with_root s name, posmap)
           with Schema.Schema_error e ->
             fail ~col:name_col lineno (Fmt.str "%a" Schema.pp_error e))
        | D_element { name; name_col; body; body_col } ->
          declare name name_col (fun () ->
              Schema.add_element s name (resolve lineno body_col body))
        | D_function { name; name_col; input; input_col; output; output_col;
                       invocable } ->
          declare name name_col (fun () ->
              Schema.add_function s
                (Schema.func ~invocable name
                   ~input:(resolve lineno input_col input)
                   ~output:(resolve lineno output_col output)))
        | D_pattern { name; name_col; predicates; input; input_col;
                      output; output_col; invocable } ->
          declare name name_col (fun () ->
              Schema.add_pattern s
                (Schema.pattern ~invocable ~predicates name
                   ~input:(resolve lineno input_col input)
                   ~output:(resolve lineno output_col output))))
      (Schema.empty, Schema.String_map.empty) decls
  in
  (try Schema.check schema
   with Schema.Schema_error e -> fail 0 ~col:0 (Fmt.str "%a" Schema.pp_error e));
  (schema, positions)

let parse input = fst (parse_with_positions input)

let parse_result input =
  match parse input with
  | s -> Ok s
  | exception Parse_error { line; col; message } ->
    if line = 0 then Result.error (Fmt.str "schema: %s" message)
    else Result.error (Fmt.str "line %d, col %d: %s" line col message)
