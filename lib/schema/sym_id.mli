(** Dense integer codes for schema symbols ([Data] / [Label] / [Fun]),
    backed by the process-wide {!Axml_regex.Interner.global}. The dense
    automata kernel steps transition tables indexed by these ids; the
    coding is positional (Data = 0, Label l = 2·intern l + 1,
    Fun f = 2·intern f + 2) so distinct symbols never collide and the
    ids agree across domains. *)

val data : int
(** The id of {!Symbol.Data} (always 0). *)

val of_label : string -> int
val of_fun : string -> int

val of_symbol : Symbol.t -> int
val to_symbol : int -> Symbol.t
(** Inverse of {!of_symbol}.
    @raise Invalid_argument on an id never handed out. *)

val of_word : Symbol.t list -> int array

val hash_word : Symbol.t list -> int
(** Non-negative hash of a children word via its dense ids — one
    interner hit per symbol, no structural string traversal. *)
