(** A minimal HTTP/1.1 front for the parts of the endpoint that external
    tooling wants over plain HTTP: a Prometheus scrape and a one-shot
    document POST. Only what {!Server} needs — request-line + headers +
    [Content-Length] bodies, no chunking, no keep-alive pipelining. *)

exception Http_error of string

type request = {
  meth : string;           (** uppercased, e.g. ["GET"] *)
  path : string;           (** request target, e.g. ["/metrics"] *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

val read_request : ?max_body:int -> in_channel -> request option
(** [None] on clean EOF before any byte.
    @raise Http_error on a malformed request or a body over
    [max_body] (default {!Wire.default_max_frame_bytes}). *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val write_response :
  out_channel -> status:int -> ?content_type:string -> string -> unit
(** Write a complete [HTTP/1.1] response with [Content-Length] and
    [Connection: close], then flush. *)

val status_text : int -> string
