(** The Active XML wire protocol: typed requests/responses for the full
    peer surface, a deterministic binary codec, and length-prefixed
    framing.

    The protocol is the {e transport-agnostic} contract between peers:
    [Endpoint.handle] consumes {!request}s and produces {!response}s
    whether they arrived over a socket, an HTTP POST, or an in-process
    function call. XML payloads (documents, schemas, SOAP envelopes)
    travel as their existing XML wire syntax inside binary
    length-prefixed fields, so the codec never has to re-escape them and
    [decode ∘ encode] is the identity on every message
    (property-tested). *)

exception Wire_error of string
(** Corrupt framing or an undecodable payload. *)

val protocol_version : int
(** Version of the framed binary protocol (independent of
    {!Axml_peer.Soap.protocol_version}, which versions envelopes).
    Version 2 added the rewriting depth [k] to
    {!Open_exchange}/{!Exchange_opened}, so both sides of an agreement
    provably enforce at the same bound. *)

(** {1 Messages}

    Document, schema and envelope payloads are carried as XML strings
    ([Axml_peer.Syntax] / [Axml_peer.Xml_schema_int] / [Axml_peer.Soap]
    syntax); parsing happens at the endpoint, once per stream for
    schemas (see {!Open_exchange}). *)

type metrics_format = Prometheus | Json

type request =
  | Ping
  | Open_exchange of { schema_xml : string; k : int }
      (** Declare the agreed exchange schema (and the sender's
          rewriting depth [k]) once; subsequent {!Exchange}s reference
          the returned id, so the receiver compiles its validation
          context once per agreement, not once per document. The
          receiver refuses (["k-mismatch"]) when [k] differs from its
          own configured depth — the two ends must enforce at the same
          bound. *)
  | Exchange of { exchange : int; as_name : string; doc_xml : string }
      (** One document crossing the wire under an opened agreement. *)
  | Invoke of { envelope : string }
      (** Remote service invocation: a {!Axml_peer.Soap} request
          envelope, answered by a response or fault envelope. *)
  | Get_wsdl of { service : string }
  | List_services
  | List_documents
  | Get_document of { name : string }
  | Lint_exchange of { schema_xml : string }
      (** Contract-level lint of the receiver's side of an agreement. *)
  | Get_metrics of { format : metrics_format }

type refusal = { at : Axml_core.Document.path; context : string }
(** One validation violation of a refused exchange, mirroring the
    failures [Axml_peer.Peer.receive] reports in-process. *)

type response =
  | Pong of { peer : string; protocol : int }
  | Exchange_opened of { id : int; k : int }
      (** The agreement id plus the depth both sides now enforce at
          (echoes the request's [k]). *)
  | Accepted of { as_name : string; wire_bytes : int }
  | Refused of { refusals : refusal list }
  | Envelope of { envelope : string }
  | Wsdl of { wsdl : string }
  | Names of { names : string list }
  | Document of { doc_xml : string }
  | Report of { json : string }
  | Metrics of { format : metrics_format; body : string }
  | Error of { code : string; reason : string }
      (** Transport- or endpoint-level failure; stable [code]s:
          ["overloaded"], ["shutting-down"], ["unknown-exchange"],
          ["unknown-service"], ["unknown-document"], ["protocol"],
          ["fault"], ["k-mismatch"]. *)

val request_op : request -> string
(** Stable lowercase operation name (metrics label / logging). *)

val response_op : response -> string

val pp_request : request Fmt.t
val pp_response : response Fmt.t

(** {1 Codec} *)

val encode_request : request -> string
val decode_request : string -> request
(** @raise Wire_error on an undecodable payload. *)

val encode_response : response -> string
val decode_response : string -> response
(** @raise Wire_error on an undecodable payload. *)

(** {1 Framing}

    A frame is [magic] (4 bytes), a big-endian 32-bit payload length,
    then the payload. Peers sniff the first bytes of a connection to
    tell framed protocol from HTTP. *)

val magic : string
(** ["AXF1"]. *)

val default_max_frame_bytes : int
(** 16 MiB: the admission-control bound on a single payload. *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame : ?max_bytes:int -> in_channel -> string option
(** [None] on clean EOF before any byte of a frame.
    @raise Wire_error on a bad magic, an oversized declared length, or
    EOF mid-frame (a torn frame). *)
