(** The transport-agnostic peer endpoint: one handler mapping
    {!Wire.request}s to {!Wire.response}s over an {!Axml_peer.Peer.t}.

    The same [handle] backs every transport — the in-process
    {!transport} used by tests, the framed socket protocol and the HTTP
    front of {!Server}, and the CLI. It never raises on bad input:
    protocol-level problems come back as [Wire.Error] responses with
    stable codes. *)

type t

val create :
  ?config:Axml_peer.Peer.config -> ?repo:Repo.t -> Axml_peer.Peer.t -> t
(** Wrap a peer. [config], when given, is applied with
    {!Axml_peer.Peer.configure} — the served peer and an in-process one
    configured from the same record behave identically. [repo] journals
    every accepted exchange ({!Repo.record_store}). *)

val peer : t -> Axml_peer.Peer.t

val handle : t -> Wire.request -> Wire.response
(** Serve one request. Documents accepted through [Exchange] are stored
    in the peer's repository (and journaled when a {!Repo.t} is
    attached). Never raises. *)

type transport = Wire.request -> Wire.response
(** What a client needs: any function with the semantics of {!handle}.
    [handle t] is the in-process transport; [Client.transport] is the
    socket-backed one. *)

val open_exchanges : t -> int
(** Agreements currently opened (monotonic ids handed out by
    [Open_exchange] and still resolvable). *)

val reset_exchanges : t -> unit
(** Forget every open agreement, as a restarted server would. Subsequent
    [Exchange] requests under an old id answer ["unknown-exchange"];
    {!Client} transparently re-opens its agreement once and retries. *)
