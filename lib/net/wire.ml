(* The Active XML wire protocol: typed requests/responses, a binary
   codec, and length-prefixed framing.

   The codec is deliberately boring: tag byte, big-endian u32 lengths
   and counts, raw bytes for strings. XML payloads (documents, schemas,
   envelopes) ride inside string fields in their existing wire syntax,
   so the only invariants here are structural and [decode ∘ encode] is
   exactly the identity. *)

exception Wire_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Wire_error m)) fmt

(* Version 2: Open_exchange / Exchange_opened carry the rewriting depth
   k, so sender and receiver provably agree on the enforcement bound
   before any document flows. *)
let protocol_version = 2

type metrics_format = Prometheus | Json

type request =
  | Ping
  | Open_exchange of { schema_xml : string; k : int }
  | Exchange of { exchange : int; as_name : string; doc_xml : string }
  | Invoke of { envelope : string }
  | Get_wsdl of { service : string }
  | List_services
  | List_documents
  | Get_document of { name : string }
  | Lint_exchange of { schema_xml : string }
  | Get_metrics of { format : metrics_format }

type refusal = { at : Axml_core.Document.path; context : string }

type response =
  | Pong of { peer : string; protocol : int }
  | Exchange_opened of { id : int; k : int }
  | Accepted of { as_name : string; wire_bytes : int }
  | Refused of { refusals : refusal list }
  | Envelope of { envelope : string }
  | Wsdl of { wsdl : string }
  | Names of { names : string list }
  | Document of { doc_xml : string }
  | Report of { json : string }
  | Metrics of { format : metrics_format; body : string }
  | Error of { code : string; reason : string }

let request_op = function
  | Ping -> "ping"
  | Open_exchange _ -> "open-exchange"
  | Exchange _ -> "exchange"
  | Invoke _ -> "invoke"
  | Get_wsdl _ -> "wsdl"
  | List_services -> "list-services"
  | List_documents -> "list-documents"
  | Get_document _ -> "get-document"
  | Lint_exchange _ -> "lint"
  | Get_metrics _ -> "metrics"

let response_op = function
  | Pong _ -> "pong"
  | Exchange_opened _ -> "exchange-opened"
  | Accepted _ -> "accepted"
  | Refused _ -> "refused"
  | Envelope _ -> "envelope"
  | Wsdl _ -> "wsdl"
  | Names _ -> "names"
  | Document _ -> "document"
  | Report _ -> "report"
  | Metrics _ -> "metrics"
  | Error _ -> "error"

let pp_request ppf r =
  match r with
  | Open_exchange { schema_xml = _; k } -> Fmt.pf ppf "open-exchange (k=%d)" k
  | Exchange { exchange; as_name; doc_xml } ->
    Fmt.pf ppf "exchange[%d] as %S (%d bytes)" exchange as_name
      (String.length doc_xml)
  | Get_wsdl { service } -> Fmt.pf ppf "wsdl %s" service
  | Get_document { name } -> Fmt.pf ppf "get-document %S" name
  | r -> Fmt.string ppf (request_op r)

let pp_response ppf r =
  match r with
  | Error { code; reason } -> Fmt.pf ppf "error %s: %s" code reason
  | Refused { refusals } -> Fmt.pf ppf "refused (%d violation(s))" (List.length refusals)
  | r -> Fmt.string ppf (response_op r)

(* ------------------------------------------------------------------ *)
(* Primitive writers / readers                                         *)
(* ------------------------------------------------------------------ *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  if v < 0 then fail "negative length %d" v;
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf put items =
  put_u32 buf (List.length items);
  List.iter (put buf) items

(* A reader is a string plus a mutable cursor with bounds checks. *)
type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then
    fail "truncated payload (need %d bytes at offset %d of %d)" n r.pos
      (String.length r.data)

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let b i = Char.code r.data.[r.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let get_str r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get =
  let n = get_u32 r in
  List.init n (fun _ -> get r)

let finish r v =
  if r.pos <> String.length r.data then
    fail "trailing garbage: %d unconsumed byte(s)" (String.length r.data - r.pos);
  v

let put_format buf = function Prometheus -> put_u8 buf 1 | Json -> put_u8 buf 2

let get_format r =
  match get_u8 r with
  | 1 -> Prometheus
  | 2 -> Json
  | t -> fail "unknown metrics format tag %d" t

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let encode_request (req : request) : string =
  let buf = Buffer.create 256 in
  (match req with
   | Ping -> put_u8 buf 1
   | Open_exchange { schema_xml; k } ->
     put_u8 buf 2;
     put_str buf schema_xml;
     put_u32 buf k
   | Exchange { exchange; as_name; doc_xml } ->
     put_u8 buf 3;
     put_u32 buf exchange;
     put_str buf as_name;
     put_str buf doc_xml
   | Invoke { envelope } ->
     put_u8 buf 4;
     put_str buf envelope
   | Get_wsdl { service } ->
     put_u8 buf 5;
     put_str buf service
   | List_services -> put_u8 buf 6
   | List_documents -> put_u8 buf 7
   | Get_document { name } ->
     put_u8 buf 8;
     put_str buf name
   | Lint_exchange { schema_xml } ->
     put_u8 buf 9;
     put_str buf schema_xml
   | Get_metrics { format } ->
     put_u8 buf 10;
     put_format buf format);
  Buffer.contents buf

let decode_request (payload : string) : request =
  let r = { data = payload; pos = 0 } in
  let req =
    match get_u8 r with
    | 1 -> Ping
    | 2 ->
      let schema_xml = get_str r in
      let k = get_u32 r in
      Open_exchange { schema_xml; k }
    | 3 ->
      let exchange = get_u32 r in
      let as_name = get_str r in
      let doc_xml = get_str r in
      Exchange { exchange; as_name; doc_xml }
    | 4 -> Invoke { envelope = get_str r }
    | 5 -> Get_wsdl { service = get_str r }
    | 6 -> List_services
    | 7 -> List_documents
    | 8 -> Get_document { name = get_str r }
    | 9 -> Lint_exchange { schema_xml = get_str r }
    | 10 -> Get_metrics { format = get_format r }
    | t -> fail "unknown request tag %d" t
  in
  finish r req

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let put_refusal buf { at; context } =
  put_list buf put_u32 at;
  put_str buf context

let get_refusal r =
  let at = get_list r get_u32 in
  let context = get_str r in
  { at; context }

let encode_response (resp : response) : string =
  let buf = Buffer.create 256 in
  (match resp with
   | Pong { peer; protocol } ->
     put_u8 buf 1;
     put_str buf peer;
     put_u32 buf protocol
   | Exchange_opened { id; k } ->
     put_u8 buf 2;
     put_u32 buf id;
     put_u32 buf k
   | Accepted { as_name; wire_bytes } ->
     put_u8 buf 3;
     put_str buf as_name;
     put_u32 buf wire_bytes
   | Refused { refusals } ->
     put_u8 buf 4;
     put_list buf put_refusal refusals
   | Envelope { envelope } ->
     put_u8 buf 5;
     put_str buf envelope
   | Wsdl { wsdl } ->
     put_u8 buf 6;
     put_str buf wsdl
   | Names { names } ->
     put_u8 buf 7;
     put_list buf put_str names
   | Document { doc_xml } ->
     put_u8 buf 8;
     put_str buf doc_xml
   | Report { json } ->
     put_u8 buf 9;
     put_str buf json
   | Metrics { format; body } ->
     put_u8 buf 10;
     put_format buf format;
     put_str buf body
   | Error { code; reason } ->
     put_u8 buf 11;
     put_str buf code;
     put_str buf reason);
  Buffer.contents buf

let decode_response (payload : string) : response =
  let r = { data = payload; pos = 0 } in
  let resp =
    match get_u8 r with
    | 1 ->
      let peer = get_str r in
      let protocol = get_u32 r in
      Pong { peer; protocol }
    | 2 ->
      let id = get_u32 r in
      let k = get_u32 r in
      Exchange_opened { id; k }
    | 3 ->
      let as_name = get_str r in
      let wire_bytes = get_u32 r in
      Accepted { as_name; wire_bytes }
    | 4 -> Refused { refusals = get_list r get_refusal }
    | 5 -> Envelope { envelope = get_str r }
    | 6 -> Wsdl { wsdl = get_str r }
    | 7 -> Names { names = get_list r get_str }
    | 8 -> Document { doc_xml = get_str r }
    | 9 -> Report { json = get_str r }
    | 10 ->
      let format = get_format r in
      let body = get_str r in
      Metrics { format; body }
    | 11 ->
      let code = get_str r in
      let reason = get_str r in
      Error { code; reason }
    | t -> fail "unknown response tag %d" t
  in
  finish r resp

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let magic = "AXF1"
let default_max_frame_bytes = 16 * 1024 * 1024

let write_frame oc payload =
  output_string oc magic;
  let n = String.length payload in
  output_char oc (Char.chr ((n lsr 24) land 0xff));
  output_char oc (Char.chr ((n lsr 16) land 0xff));
  output_char oc (Char.chr ((n lsr 8) land 0xff));
  output_char oc (Char.chr (n land 0xff));
  output_string oc payload;
  flush oc

(* Read exactly [n] bytes; [`Eof k] reports how many bytes arrived
   before the stream ended. *)
let really_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string b)
    else
      match input ic b off (n - off) with
      | 0 -> `Eof off
      | k -> go (off + k)
      | exception End_of_file -> `Eof off
  in
  go 0

let read_frame ?(max_bytes = default_max_frame_bytes) ic : string option =
  match really_read ic 8 with
  | `Eof 0 -> None
  | `Eof k -> fail "torn frame header (%d of 8 bytes)" k
  | `Ok header ->
    if String.sub header 0 4 <> magic then
      fail "bad frame magic %S" (String.sub header 0 4);
    let b i = Char.code header.[4 + i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_bytes then fail "frame of %d bytes exceeds the %d limit" n max_bytes;
    (match really_read ic n with
     | `Ok payload -> Some payload
     | `Eof k -> fail "torn frame payload (%d of %d bytes)" k n)
