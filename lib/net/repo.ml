(* Append-only journal + snapshot persistence for a peer's repository.

   Journal records reuse the wire framing (magic + length prefix), so a
   crash mid-append leaves a torn tail the framing detects; recovery
   truncates it and keeps everything before. *)

module D = Axml_core.Document
module Peer = Axml_peer.Peer
module Storage = Axml_peer.Storage

exception Repo_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Repo_error m)) fmt

type t = {
  dir : string;
  peer : Peer.t;
  auto_compact : int;
  lock : Mutex.t;
  mutable oc : out_channel option; (* [None] after {!close} *)
  mutable entries : int;
  mutable recovered : int;
  mutable skipped : int; (* corrupt snapshot entries ignored at recovery *)
}

let journal_path dir = Filename.concat dir "journal.log"
let snapshot_dir dir = Filename.concat dir "snapshot"
let manifest_path dir = Filename.concat (snapshot_dir dir) "MANIFEST"

let mkdir_p path =
  let rec go path =
    if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

(* One journal record: length-prefixed repository name, then the
   document's XML wire syntax to the end of the payload. *)

let encode_record name doc =
  let xml = Axml_peer.Syntax.to_xml_string ~pretty:false doc in
  let buf = Buffer.create (String.length name + String.length xml + 4) in
  let n = String.length name in
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_string buf name;
  Buffer.add_string buf xml;
  Buffer.contents buf

let decode_record payload =
  if String.length payload < 4 then fail "journal record too short";
  let b i = Char.code payload.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if 4 + n > String.length payload then fail "journal record name overruns";
  let name = String.sub payload 4 n in
  let xml = String.sub payload (4 + n) (String.length payload - 4 - n) in
  (name, xml)

(* Replay what the manifest lists. A corrupt manifest line (or a listed
   file that is missing or unparseable) is skipped and counted, never
   fatal: a repository whose snapshot was damaged on disk must still
   come up with every intact document plus the journal suffix. *)
let replay_snapshot t =
  let manifest = manifest_path t.dir in
  if Sys.file_exists manifest then begin
    let ic = open_in manifest in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    try
      while true do
        let line = input_line ic in
        match Storage.decode_name line with
        | exception Storage.Storage_error _ -> t.skipped <- t.skipped + 1
        | name ->
          let path =
            Filename.concat (snapshot_dir t.dir)
              (Storage.encode_name name ^ ".xml")
          in
          (match Storage.load_document ~path with
           | doc ->
             Peer.store t.peer name doc;
             t.recovered <- t.recovered + 1
           | exception Storage.Storage_error _ -> t.skipped <- t.skipped + 1
           | exception Sys_error _ -> t.skipped <- t.skipped + 1)
      done
    with End_of_file -> ()
  end

(* Replay intact records; on the first torn or corrupt one, truncate the
   journal there and stop — that is the record the crash interrupted. *)
let replay_journal t =
  let path = journal_path t.dir in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let truncate_at = ref (-1) in
    (Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
     let rec go () =
       let pos = pos_in ic in
       match Wire.read_frame ic with
       | None -> ()
       | Some payload ->
         let name, xml = decode_record payload in
         let doc =
           try Axml_peer.Syntax.of_xml_string xml
           with Axml_peer.Syntax.Syntax_error m ->
             fail "journal record %S: %s" name m
         in
         Peer.store t.peer name doc;
         t.recovered <- t.recovered + 1;
         t.entries <- t.entries + 1;
         go ()
       | exception Wire.Wire_error _ -> truncate_at := pos
     in
     go ());
    if !truncate_at >= 0 then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd !truncate_at;
      Unix.close fd
    end
  end

let journal_channel t =
  match t.oc with
  | Some oc -> oc
  | None -> fail "repository %s is closed" t.dir

(* Flush a directory's metadata (new names, renames) to disk; best
   effort on filesystems that refuse fsync on directories. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let snapshot_locked t =
  let snap = snapshot_dir t.dir in
  mkdir_p snap;
  let names = Peer.documents t.peer in
  List.iter
    (fun name ->
       let path = Filename.concat snap (Storage.encode_name name ^ ".xml") in
       Storage.save_document ~path (Peer.fetch t.peer name))
    names;
  (* The manifest is written last, fsynced, and renamed into place (with
     the directory entry fsynced too): a crash — or power cut — during
     the snapshot leaves the previous manifest (and journal) intact, and
     a completed rename refers to data that actually reached the disk. *)
  let tmp = manifest_path t.dir ^ ".tmp" in
  let oc = open_out tmp in
  List.iter (fun name -> output_string oc (Storage.encode_name name ^ "\n")) names;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp (manifest_path t.dir);
  fsync_dir snap

let compact_locked t =
  snapshot_locked t;
  (match t.oc with Some oc -> close_out_noerr oc | None -> ());
  t.oc <- Some (open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
                  0o644 (journal_path t.dir));
  t.entries <- 0

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let attach ?(auto_compact = 1024) ~dir peer =
  mkdir_p dir;
  let t =
    { dir; peer; auto_compact; lock = Mutex.create (); oc = None;
      entries = 0; recovered = 0; skipped = 0 }
  in
  replay_snapshot t;
  replay_journal t;
  t.oc <- Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
                  (journal_path t.dir));
  t

let record_store t name doc =
  with_lock t @@ fun () ->
  let oc = journal_channel t in
  Wire.write_frame oc (encode_record name doc);
  t.entries <- t.entries + 1;
  if t.auto_compact > 0 && t.entries >= t.auto_compact then compact_locked t

let compact t =
  with_lock t @@ fun () ->
  ignore (journal_channel t);
  compact_locked t

let journal_entries t = t.entries
let recovered t = t.recovered
let skipped t = t.skipped
let dir t = t.dir

let close t =
  with_lock t @@ fun () ->
  match t.oc with
  | None -> ()
  | Some oc ->
    close_out_noerr oc;
    t.oc <- None
