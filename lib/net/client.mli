(** A client for a served peer: one socket speaking the framed binary
    protocol, with typed helpers mirroring the in-process peer API.

    {!send} runs the {e sender-side} enforcement pipeline locally (on
    the caller's own peer) and ships the enforced document; the server
    runs exactly the receiver-side half ({!Axml_peer.Peer.receive}), so
    a networked exchange and an in-process {!Axml_peer.Peer.send}
    produce identical outcomes — byte-identical wire documents and
    equal verdicts. *)

exception Net_error of string
(** Transport failure or a server [Error] response (the message carries
    the stable error code). *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** @raise Unix.Unix_error when the peer is unreachable. *)

val close : t -> unit
(** Idempotent. *)

val rpc : t -> Wire.request -> Wire.response
(** One framed round-trip. Serialized behind a mutex: a client is safe
    to share between threads (requests interleave whole).
    @raise Net_error on a transport failure (not on [Error] responses —
    those are returned). *)

val transport : t -> Endpoint.transport
(** [rpc t] as a transport: anything written against
    {!Endpoint.transport} runs unchanged over the socket. *)

val ping : t -> string * int
(** Remote peer name and protocol version.
    @raise Net_error on anything but a [Pong]. *)

val send :
  t -> sender:Axml_peer.Peer.t -> exchange:Axml_schema.Schema.t ->
  as_name:string -> Axml_core.Document.t ->
  (Axml_peer.Peer.exchange_outcome, Axml_peer.Enforcement.error) result
(** The networked counterpart of {!Axml_peer.Peer.send}: enforce on
    [sender], open (and cache) the exchange agreement for this [exchange]
    schema at the sender's configured depth [k] (the receiver refuses
    with ["k-mismatch"] unless it enforces at the same bound), ship the
    wire document, map the server's verdict back. Agreements are cached
    by structural schema equality; a stale agreement id (the server
    restarted and answered ["unknown-exchange"]) is re-opened once and
    the exchange retried once, transparently.
    @raise Net_error on transport or protocol errors. *)

val call : t -> string -> Axml_core.Document.forest -> Axml_core.Document.forest
(** Invoke a remote service through a SOAP envelope over the wire.
    @raise Axml_peer.Peer.Peer_error on a fault (same shape as an
    in-process proxy call). *)

val import_services : t -> into:Axml_peer.Peer.t -> string list
(** Fetch the server's service list and WSDL descriptors, and register a
    networked proxy for each into [into]
    ({!Axml_peer.Peer.register_remote}); intensional calls on [into]
    then invoke over this connection. Returns the imported names. *)

val http :
  ?host:string -> port:int -> meth:string -> path:string -> ?body:string ->
  unit -> int * string
(** One-shot HTTP request against a server's HTTP front (its own
    connection): status code and body. *)
