(* Socket client for a served peer. [send] mirrors [Peer.send]'s
   sender-side half exactly, so networked and in-process exchanges agree
   byte for byte. *)

module Peer = Axml_peer.Peer
module Soap = Axml_peer.Soap
module Syntax = Axml_peer.Syntax
module Enforcement = Axml_peer.Enforcement
module Rewriter = Axml_core.Rewriter

exception Net_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Net_error m)) fmt

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  lock : Mutex.t;
  mutable closed : bool;
  (* Agreement ids by exchange schema value and depth. Structural
     equality: a re-parsed or re-built schema equal to a cached one
     reuses its agreement instead of leaking a new id per send. *)
  mutable agreements : (Axml_schema.Schema.t * int * int) list;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd;
    lock = Mutex.create (); closed = false; agreements = [] }

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.lock

let rpc t req =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then fail "connection is closed";
  match
    Wire.write_frame t.oc (Wire.encode_request req);
    Wire.read_frame t.ic
  with
  | Some payload -> Wire.decode_response payload
  | None -> fail "server closed the connection"
  | exception Wire.Wire_error m -> fail "wire error: %s" m
  | exception Sys_error m -> fail "transport error: %s" m

let transport t : Endpoint.transport = fun req -> rpc t req

let ping t =
  match rpc t Wire.Ping with
  | Wire.Pong { peer; protocol } -> (peer, protocol)
  | Wire.Error { code; reason } -> fail "ping refused (%s): %s" code reason
  | r -> fail "unexpected ping response: %a" Wire.pp_response r

let forget_agreement t id =
  Mutex.lock t.lock;
  t.agreements <- List.filter (fun (_, _, i) -> i <> id) t.agreements;
  Mutex.unlock t.lock

(* The agreement id for an exchange schema value at depth [k], opening
   it on first use. Guarded by the rpc lock's owner thread only through
   [rpc], so a plain mutable list with its own small critical sections
   suffices. *)
let agreement t ~k exchange =
  let found =
    Mutex.lock t.lock;
    let r =
      List.find_opt (fun (s, sk, _) -> sk = k && s = exchange) t.agreements
    in
    Mutex.unlock t.lock;
    r
  in
  match found with
  | Some (_, _, id) -> id
  | None ->
    let schema_xml = Axml_peer.Xml_schema_int.to_string exchange in
    (match rpc t (Wire.Open_exchange { schema_xml; k }) with
     | Wire.Exchange_opened { id; k = _ } ->
       Mutex.lock t.lock;
       t.agreements <- (exchange, k, id) :: t.agreements;
       Mutex.unlock t.lock;
       id
     | Wire.Error { code; reason } -> fail "open-exchange refused (%s): %s" code reason
     | r -> fail "unexpected open-exchange response: %a" Wire.pp_response r)

(* Reconstruct the failure values [Peer.receive] reports in-process, so
   verdicts compare equal across transports. *)
let failures_of_refusals refusals =
  List.map
    (fun { Wire.at; context } ->
       { Rewriter.at; reason = Rewriter.Unsafe_word { context; word = [] } })
    refusals

let send t ~sender ~exchange ~as_name doc :
    (Peer.exchange_outcome, Enforcement.error) result =
  match Enforcement.Pipeline.enforce (Peer.exchange_pipeline sender ~exchange) doc with
  | Error e -> Error e
  | Ok (doc', report) ->
    let wire = Syntax.to_xml_string ~pretty:false doc' in
    let k = (Peer.current_config sender).Peer.k in
    let exchange_once () =
      let id = agreement t ~k exchange in
      (id, rpc t (Wire.Exchange { exchange = id; as_name; doc_xml = wire }))
    in
    let id, resp = exchange_once () in
    let resp =
      match resp with
      | Wire.Error { code = "unknown-exchange"; _ } ->
        (* The server restarted (or dropped its agreements) since we
           opened ours; forget the stale id, re-open once, retry once. *)
        forget_agreement t id;
        snd (exchange_once ())
      | r -> r
    in
    (match resp with
     | Wire.Accepted { wire_bytes; _ } -> Ok { Peer.sent = doc'; report; wire_bytes }
     | Wire.Refused { refusals } ->
       Error (Enforcement.Rejected (failures_of_refusals refusals))
     | Wire.Error { code; reason } -> fail "exchange refused (%s): %s" code reason
     | r -> fail "unexpected exchange response: %a" Wire.pp_response r)

let invoke_envelope t envelope =
  match rpc t (Wire.Invoke { envelope }) with
  | Wire.Envelope { envelope } -> envelope
  | Wire.Error { code; reason } -> fail "invoke refused (%s): %s" code reason
  | r -> fail "unexpected invoke response: %a" Wire.pp_response r

let call t method_name params =
  let envelope = Soap.encode (Soap.Request { method_name; params }) in
  match Soap.decode (invoke_envelope t envelope) with
  | Soap.Response { result; _ } -> result
  | Soap.Fault { reason; _ } ->
    raise (Peer.Peer_error (Fmt.str "remote fault: %s" reason))
  | Soap.Request _ -> raise (Peer.Peer_error "protocol violation")

let import_services t ~into =
  let names =
    match rpc t Wire.List_services with
    | Wire.Names { names } -> names
    | Wire.Error { code; reason } -> fail "list-services refused (%s): %s" code reason
    | r -> fail "unexpected list-services response: %a" Wire.pp_response r
  in
  List.iter
    (fun name ->
       let wsdl =
         match rpc t (Wire.Get_wsdl { service = name }) with
         | Wire.Wsdl { wsdl } -> wsdl
         | Wire.Error { code; reason } -> fail "wsdl %s refused (%s): %s" name code reason
         | r -> fail "unexpected wsdl response: %a" Wire.pp_response r
       in
       let ((func, _) as declaration) =
         Axml_peer.Wsdl.parse_string ~service:name wsdl
       in
       let service =
         Axml_services.Service.make
           ~endpoint:(Option.value func.Axml_schema.Schema.f_endpoint
                        ~default:"axml://remote")
           ~namespace:(Option.value func.Axml_schema.Schema.f_namespace
                         ~default:"urn:axml:peer")
           ~input:func.Axml_schema.Schema.f_input
           ~output:func.Axml_schema.Schema.f_output name
           (fun params -> call t name params)
       in
       Peer.register_remote into ~service ~declaration)
    names;
  names

(* One-shot HTTP request (its own connection; the server closes after
   responding). *)
let http ?(host = "127.0.0.1") ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  Printf.fprintf oc "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\n\r\n%s"
    (String.uppercase_ascii meth) path host (String.length body) body;
  flush oc;
  let status_line = try input_line ic with End_of_file -> fail "empty response" in
  let status =
    match String.split_on_char ' ' (String.trim status_line) with
    | _ :: code :: _ ->
      (match int_of_string_opt code with
       | Some c -> c
       | None -> fail "malformed status line %S" status_line)
    | _ -> fail "malformed status line %S" status_line
  in
  (* Skip headers, then read the body to EOF (Connection: close). *)
  (try
     while String.trim (input_line ic) <> "" do () done
   with End_of_file -> ());
  let buf = Buffer.create 1024 in
  (try
     while true do Buffer.add_channel buf ic 1 done
   with End_of_file -> ());
  (status, Buffer.contents buf)
