(* The transport-agnostic endpoint: Wire.request -> Wire.response over a
   peer. All transports (in-process, framed socket, HTTP, CLI) funnel
   through [handle], so served and in-process peers give byte-identical
   answers. *)

module Peer = Axml_peer.Peer
module Schema = Axml_schema.Schema
module Metrics = Axml_obs.Metrics

type t = {
  peer : Peer.t;
  repo : Repo.t option;
  exchanges : (int, Schema.t * int) Hashtbl.t;
  lock : Mutex.t;
  mutable next_id : int;
}

type transport = Wire.request -> Wire.response

(* One requests counter per operation label, shared across endpoints. *)
let m_requests : (string, Metrics.counter) Hashtbl.t = Hashtbl.create 16
let m_requests_lock = Mutex.create ()

let count_request op =
  Mutex.lock m_requests_lock;
  let c =
    match Hashtbl.find_opt m_requests op with
    | Some c -> c
    | None ->
      let c =
        Metrics.counter ~help:"Endpoint requests served, by operation"
          ~labels:[ ("op", op) ] "axml_net_requests_total"
      in
      Hashtbl.add m_requests op c;
      c
  in
  Mutex.unlock m_requests_lock;
  Metrics.inc c

let create ?config ?repo peer =
  (match config with Some c -> Peer.configure peer c | None -> ());
  { peer; repo; exchanges = Hashtbl.create 8; lock = Mutex.create ();
    next_id = 1 }

let peer t = t.peer

let open_exchanges t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.exchanges in
  Mutex.unlock t.lock;
  n

(* Drop every open agreement, as a restarted server would. Clients must
   re-open; [Client] recovers from the resulting "unknown-exchange". *)
let reset_exchanges t =
  Mutex.lock t.lock;
  Hashtbl.reset t.exchanges;
  Mutex.unlock t.lock

let err code fmt = Fmt.kstr (fun reason -> Wire.Error { code; reason }) fmt

let parse_schema schema_xml k =
  match Axml_peer.Xml_schema_int.of_string schema_xml with
  | exception Axml_peer.Xml_schema_int.Schema_syntax_error m ->
    err "protocol" "malformed exchange schema: %s" m
  | schema -> k schema

(* [Peer.receive] reports every violation as [Unsafe_word {context;
   word = []}] with the full message in [context]; carry that raw string
   so the client can rebuild the exact same failure value (byte-equal
   verdicts across transports). Any other reason shape is formatted. *)
let refusals_of_failures failures =
  List.map
    (fun (f : Axml_core.Rewriter.failure) ->
       let context =
         match f.reason with
         | Axml_core.Rewriter.Unsafe_word { context; word = [] } -> context
         | reason -> Fmt.str "%a" Axml_core.Rewriter.pp_reason reason
       in
       { Wire.at = f.at; context })
    failures

let dispatch t : Wire.request -> Wire.response = function
  | Ping -> Pong { peer = Peer.name t.peer; protocol = Wire.protocol_version }
  | Open_exchange { schema_xml; k } ->
    let mine = (Peer.current_config t.peer).k in
    if k <> mine then
      err "k-mismatch"
        "sender enforces at k=%d but this peer enforces at k=%d" k mine
    else
      parse_schema schema_xml @@ fun schema ->
      Mutex.lock t.lock;
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.exchanges id (schema, k);
      Mutex.unlock t.lock;
      Exchange_opened { id; k }
  | Exchange { exchange; as_name; doc_xml } ->
    (Mutex.lock t.lock;
     let schema = Hashtbl.find_opt t.exchanges exchange in
     Mutex.unlock t.lock;
     match schema with
     | None -> err "unknown-exchange" "no open exchange agreement #%d" exchange
     | Some (schema, _k) ->
       (match Peer.receive t.peer ~exchange:schema ~as_name doc_xml with
        | Ok doc ->
          (match t.repo with
           | Some repo -> Repo.record_store repo as_name doc
           | None -> ());
          Accepted { as_name; wire_bytes = String.length doc_xml }
        | Error (Axml_peer.Enforcement.Rejected failures) ->
          Refused { refusals = refusals_of_failures failures }
        | Error e -> err "fault" "%a" Axml_peer.Enforcement.pp_error e))
  | Invoke { envelope } -> Envelope { envelope = Peer.handle_wire t.peer envelope }
  | Get_wsdl { service } ->
    (match Peer.provided_service t.peer service with
     | None -> err "unknown-service" "peer %s provides no service %S"
                 (Peer.name t.peer) service
     | Some s ->
       (match Axml_peer.Wsdl.describe_string ~types:(Peer.schema t.peer) s with
        | wsdl -> Wsdl { wsdl }
        | exception Axml_peer.Wsdl.Wsdl_error m -> err "fault" "%s" m))
  | List_services -> Names { names = Peer.provided_names t.peer }
  | List_documents -> Names { names = Peer.documents t.peer }
  | Get_document { name } ->
    (match Peer.fetch t.peer name with
     | doc -> Document { doc_xml = Axml_peer.Syntax.to_xml_string ~pretty:false doc }
     | exception Peer.Peer_error _ ->
       err "unknown-document" "peer %s stores no document %S"
         (Peer.name t.peer) name)
  | Lint_exchange { schema_xml } ->
    parse_schema schema_xml @@ fun schema ->
    let diags = Peer.lint_exchange t.peer ~exchange:schema in
    Report { json = Axml_analysis.Diagnostic.report_to_json diags }
  | Get_metrics { format } ->
    let body =
      match format with
      | Wire.Prometheus -> Metrics.to_prometheus Metrics.default
      | Wire.Json -> Metrics.to_json Metrics.default
    in
    Metrics { format; body }

let handle t req =
  count_request (Wire.request_op req);
  match dispatch t req with
  | resp -> resp
  | exception e -> err "fault" "%s" (Printexc.to_string e)
