(** A persistent document repository behind a peer: an append-only
    journal of stores plus periodic snapshots, with recovery on startup.

    Layout under the repository directory:

    {v
<dir>/snapshot/MANIFEST        one repository name per line (written last)
<dir>/snapshot/<enc>.xml       one intensional document per entry
<dir>/journal.log              framed store records since the snapshot
    v}

    {!attach} replays snapshot then journal into the peer's in-memory
    repository; a torn journal tail (the record being appended when the
    process died) is detected by the framing and dropped, everything
    before it is recovered. Corrupt snapshot state (a garbage MANIFEST
    line, a missing or unparseable snapshot file) is skipped and counted
    ({!skipped}), never fatal. {!record_store} appends one frame per
    store and compacts automatically every [auto_compact] records
    ({!compact}: snapshot everything, truncate the journal; the new
    manifest is fsynced and renamed into place, then the directory entry
    fsynced, so a power cut cannot leave a half-written manifest). *)

exception Repo_error of string

type t

val attach : ?auto_compact:int -> dir:string -> Axml_peer.Peer.t -> t
(** Open (creating directories as needed) and recover: every snapshot
    document and every intact journal record is {!Axml_peer.Peer.store}d
    into the peer. [auto_compact] (default 1024, [0] disables) bounds
    the journal length. A torn trailing record is truncated away.
    @raise Repo_error on unreadable state. *)

val record_store : t -> string -> Axml_core.Document.t -> unit
(** Append one store to the journal (and compact if due). Serialized
    behind an internal mutex: safe from concurrent server threads. *)

val compact : t -> unit
(** Snapshot the peer's current repository and truncate the journal. *)

val journal_entries : t -> int
(** Records appended since the last snapshot (after recovery: the
    replayed count). *)

val recovered : t -> int
(** Documents recovered by {!attach} (snapshot + journal). *)

val skipped : t -> int
(** Corrupt snapshot entries ignored by {!attach}: undecodable MANIFEST
    lines, and listed documents that were missing or unparseable. *)

val dir : t -> string

val close : t -> unit
(** Flush and close the journal. The repository stays readable for a
    later {!attach}; using [t] after [close] raises [Repo_error]. *)
