(* Threaded socket server: accept thread + one thread per connection,
   protocol sniffed from the first bytes, explicit resource bounds,
   graceful drain on stop. *)

module Metrics = Axml_obs.Metrics

type config = {
  max_connections : int;
  max_in_flight : int;
  max_frame_bytes : int;
  error_budget : int;
  drain_timeout_s : float;
}

let default_config =
  { max_connections = 64; max_in_flight = 32;
    max_frame_bytes = Wire.default_max_frame_bytes; error_budget = 8;
    drain_timeout_s = 5.0 }

type t = {
  endpoint : Endpoint.t;
  config : config;
  listen_fd : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  in_flight : int Atomic.t;
  conns : (Unix.file_descr, Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  accept_thread : Thread.t Option.t ref;
  (* The /exchange route's standing agreement: the server peer's own
     schema, opened lazily once and reused for every POST. *)
  http_exchange : int option ref;
  http_exchange_lock : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let g_connections =
  Metrics.gauge ~help:"Open server connections" "axml_net_connections"

let g_in_flight =
  Metrics.gauge ~help:"Requests currently being served" "axml_net_in_flight"

let m_conns_binary =
  Metrics.counter ~help:"Connections accepted, by protocol"
    ~labels:[ ("kind", "binary") ] "axml_net_connections_total"

let m_conns_http =
  Metrics.counter ~help:"Connections accepted, by protocol"
    ~labels:[ ("kind", "http") ] "axml_net_connections_total"

let m_overload =
  Metrics.counter ~help:"Requests refused by admission control"
    "axml_net_overload_total"

let m_protocol_errors =
  Metrics.counter ~help:"Undecodable or torn requests" "axml_net_protocol_errors_total"

let h_request_seconds =
  Metrics.histogram ~help:"Wall-clock request service time"
    "axml_net_request_seconds"

(* ------------------------------------------------------------------ *)
(* Connection bookkeeping                                               *)
(* ------------------------------------------------------------------ *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let untrack t fd =
  with_lock t.conns_lock (fun () -> Hashtbl.remove t.conns fd);
  Metrics.set g_connections (float_of_int (Hashtbl.length t.conns))

let connections t = with_lock t.conns_lock (fun () -> Hashtbl.length t.conns)
let in_flight t = Atomic.get t.in_flight
let endpoint t = t.endpoint
let port t = t.port

(* Admission control: run [f] counted against the in-flight bound, or
   return [None] when the server is already at capacity — the caller
   answers "overloaded" without touching the pipeline. *)
let admitted t f =
  let n = Atomic.fetch_and_add t.in_flight 1 in
  if n >= t.config.max_in_flight then begin
    ignore (Atomic.fetch_and_add t.in_flight (-1));
    Metrics.inc m_overload;
    None
  end
  else
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add t.in_flight (-1));
        Metrics.set g_in_flight (float_of_int (Atomic.get t.in_flight)))
      (fun () ->
        Metrics.set g_in_flight (float_of_int (Atomic.get t.in_flight));
        Some (Metrics.time h_request_seconds f))

let serve_request t req : Wire.response =
  if Atomic.get t.stopping then
    Wire.Error { code = "shutting-down"; reason = "server is draining" }
  else
    match admitted t (fun () -> Endpoint.handle t.endpoint req) with
    | Some resp -> resp
    | None ->
      Wire.Error
        { code = "overloaded";
          reason =
            Fmt.str "admission control: %d request(s) already in flight"
              t.config.max_in_flight }

(* ------------------------------------------------------------------ *)
(* Binary protocol connection                                           *)
(* ------------------------------------------------------------------ *)

let serve_binary t ic oc =
  let budget = ref t.config.error_budget in
  let rec loop () =
    match Wire.read_frame ~max_bytes:t.config.max_frame_bytes ic with
    | None -> () (* clean EOF *)
    | exception Wire.Wire_error _ ->
      (* Torn frame or bad magic: the stream itself is unusable. *)
      Metrics.inc m_protocol_errors
    | exception Sys_error _ -> ()
    | Some payload ->
      let resp =
        match Wire.decode_request payload with
        | req -> serve_request t req
        | exception Wire.Wire_error m ->
          (* Framed but undecodable: answer and charge the budget. *)
          Metrics.inc m_protocol_errors;
          decr budget;
          Wire.Error { code = "protocol"; reason = m }
      in
      (match Wire.write_frame oc (Wire.encode_response resp) with
       | () -> if !budget > 0 then loop ()
       | exception Sys_error _ -> ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* HTTP connection                                                      *)
(* ------------------------------------------------------------------ *)

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    let path = String.sub target 0 i in
    let query = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter_map (fun kv ->
        match String.index_opt kv '=' with
        | None -> if kv = "" then None else Some (kv, "")
        | Some j ->
          Some (String.sub kv 0 j, String.sub kv (j + 1) (String.length kv - j - 1)))
    in
    (path, params)

(* The standing agreement backing POST /exchange: the server peer's own
   schema, opened through the endpoint once and reused. *)
let http_exchange_id t =
  with_lock t.http_exchange_lock @@ fun () ->
  match !(t.http_exchange) with
  | Some id -> Some id
  | None ->
    let schema_xml =
      Axml_peer.Xml_schema_int.to_string
        (Axml_peer.Peer.schema (Endpoint.peer t.endpoint))
    in
    let k = (Axml_peer.Peer.current_config (Endpoint.peer t.endpoint)).k in
    (match Endpoint.handle t.endpoint (Wire.Open_exchange { schema_xml; k }) with
     | Wire.Exchange_opened { id; k = _ } ->
       t.http_exchange := Some id;
       Some id
     | _ -> None)

let handle_http t oc (req : Http.request) =
  let respond = Http.write_response oc in
  match (req.meth, fst (split_target req.path)) with
  | "GET", "/metrics" ->
    (match serve_request t (Wire.Get_metrics { format = Wire.Prometheus }) with
     | Wire.Metrics { body; _ } ->
       respond ~status:200 ~content_type:"text/plain; version=0.0.4" body
     | Wire.Error { code = "overloaded"; reason } -> respond ~status:503 reason
     | r -> respond ~status:500 (Fmt.str "%a" Wire.pp_response r))
  | "GET", "/metrics.json" ->
    (match serve_request t (Wire.Get_metrics { format = Wire.Json }) with
     | Wire.Metrics { body; _ } ->
       respond ~status:200 ~content_type:"application/json" body
     | Wire.Error { code = "overloaded"; reason } -> respond ~status:503 reason
     | r -> respond ~status:500 (Fmt.str "%a" Wire.pp_response r))
  | "GET", "/health" -> respond ~status:200 "ok\n"
  | "POST", "/exchange" ->
    let _, params = split_target req.path in
    let as_name =
      match List.assoc_opt "as" params with
      | Some n when n <> "" -> n
      | _ -> "inbox"
    in
    (match http_exchange_id t with
     | None -> respond ~status:500 "could not open the exchange agreement\n"
     | Some exchange ->
       (match
          serve_request t (Wire.Exchange { exchange; as_name; doc_xml = req.body })
        with
        | Wire.Accepted { as_name; wire_bytes } ->
          respond ~status:200 ~content_type:"application/json"
            (Fmt.str {|{"stored": %s, "bytes": %d}|}
               (Metrics.json_string as_name) wire_bytes)
        | Wire.Refused { refusals } ->
          respond ~status:422
            (String.concat ""
               (List.map
                  (fun { Wire.at; context } ->
                     Fmt.str "at /%s: %s\n"
                       (String.concat "/" (List.map string_of_int at))
                       context)
                  refusals))
        | Wire.Error { code = "overloaded" | "shutting-down"; reason } ->
          respond ~status:503 (reason ^ "\n")
        | Wire.Error { reason; _ } -> respond ~status:400 (reason ^ "\n")
        | r -> respond ~status:500 (Fmt.str "%a" Wire.pp_response r)))
  | _, path -> respond ~status:404 (Fmt.str "no route for %s %s\n" req.meth path)

let serve_http t ic oc =
  match Http.read_request ~max_body:t.config.max_frame_bytes ic with
  | None -> ()
  | Some req -> handle_http t oc req
  | exception Http.Http_error m ->
    Metrics.inc m_protocol_errors;
    (try Http.write_response oc ~status:400 (m ^ "\n") with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

(* Peek the first byte without consuming it, to tell the framed protocol
   (leading [Wire.magic]) from HTTP: no HTTP method in use here starts
   with the magic's first letter. *)
let sniff fd =
  let buf = Bytes.create 1 in
  let rec go () =
    match Unix.recv fd buf 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> None
    | _ -> Some (Bytes.get buf 0)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let handle_connection t fd =
  let finally () =
    (* Untrack first: once the fd is closed its number can be reused, and
       [stop] must not shut down a stranger. *)
    untrack t fd;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally @@ fun () ->
  match sniff fd with
  | None -> ()
  | Some first ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    if first = Wire.magic.[0] then begin
      Metrics.inc m_conns_binary;
      serve_binary t ic oc
    end
    else begin
      Metrics.inc m_conns_http;
      serve_http t ic oc
    end;
    (try flush oc with Sys_error _ -> ())

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _addr ->
      if Atomic.get t.stopping || connections t >= t.config.max_connections
      then begin
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        (* Register under the lock before the thread runs, so [stop]
           always sees (and joins) it. *)
        Mutex.lock t.conns_lock;
        let thread = Thread.create (handle_connection t) fd in
        Hashtbl.replace t.conns fd thread;
        Mutex.unlock t.conns_lock;
        Metrics.set g_connections (float_of_int (connections t))
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
      (* The listening socket was shut down by [stop]. *)
      ()
  done

let start ?(config = default_config) ?(host = "127.0.0.1") ?(port = 0) endpoint =
  (* A client going away mid-response must be an EPIPE error on the
     connection thread, not a process-wide signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    { endpoint; config; listen_fd; port; stopping = Atomic.make false;
      in_flight = Atomic.make 0; conns = Hashtbl.create 16;
      conns_lock = Mutex.create (); accept_thread = ref None;
      http_exchange = ref None; http_exchange_lock = Mutex.create () }
  in
  t.accept_thread := Some (Thread.create accept_loop t);
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the accept thread. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match !(t.accept_thread) with
     | Some th -> Thread.join th
     | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Drain: let in-flight requests finish, bounded by the timeout. *)
    let deadline = Unix.gettimeofday () +. t.config.drain_timeout_s in
    while Atomic.get t.in_flight > 0 && Unix.gettimeofday () < deadline do
      Thread.yield ();
      ignore (Unix.select [] [] [] 0.01)
    done;
    (* Unblock idle readers, then join every connection thread. *)
    let threads =
      with_lock t.conns_lock @@ fun () ->
      Hashtbl.fold
        (fun fd th acc ->
           (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
           th :: acc)
        t.conns []
    in
    List.iter Thread.join threads;
    Metrics.set g_connections 0.
  end
