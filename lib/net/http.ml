(* Minimal HTTP/1.1: exactly what the server's /metrics and /exchange
   routes need. *)

exception Http_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Http_error m)) fmt

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

(* Read one CRLF- (or bare-LF-) terminated line, without the ending. *)
let read_line_opt ic =
  match input_line ic with
  | line ->
    let n = String.length line in
    Some (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
  | exception End_of_file -> None

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let read_request ?(max_body = Wire.default_max_frame_bytes) ic =
  match read_line_opt ic with
  | None -> None
  | Some request_line ->
    let meth, path =
      match String.split_on_char ' ' request_line with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
        (String.uppercase_ascii meth, target)
      | _ -> fail "malformed request line %S" request_line
    in
    let rec headers acc =
      match read_line_opt ic with
      | None -> fail "EOF in headers"
      | Some "" -> List.rev acc
      | Some line ->
        (match String.index_opt line ':' with
         | None -> fail "malformed header %S" line
         | Some i ->
           let name = String.lowercase_ascii (String.sub line 0 i) in
           let value =
             String.trim (String.sub line (i + 1) (String.length line - i - 1))
           in
           headers ((name, value) :: acc))
    in
    let headers = headers [] in
    let body =
      match List.assoc_opt "content-length" headers with
      | None -> ""
      | Some l ->
        (match int_of_string_opt (String.trim l) with
         | None -> fail "malformed Content-Length %S" l
         | Some n when n < 0 -> fail "malformed Content-Length %S" l
         | Some n when n > max_body ->
           fail "body of %d bytes exceeds the %d limit" n max_body
         | Some n ->
           let b = Bytes.create n in
           (try really_input ic b 0 n
            with End_of_file -> fail "EOF in body (%d bytes expected)" n);
           Bytes.unsafe_to_string b)
    in
    Some { meth; path; headers; body }

let write_response oc ~status ?(content_type = "text/plain; charset=utf-8") body =
  Printf.fprintf oc "HTTP/1.1 %d %s\r\n" status (status_text status);
  Printf.fprintf oc "Content-Type: %s\r\n" content_type;
  Printf.fprintf oc "Content-Length: %d\r\n" (String.length body);
  output_string oc "Connection: close\r\n\r\n";
  output_string oc body;
  flush oc
