(** A threaded socket server for an {!Endpoint.t}: one listener speaking
    both the framed binary protocol (connections starting with
    {!Wire.magic}) and minimal HTTP/1.1 (everything else), told apart by
    peeking the first bytes.

    Resource bounds are explicit: a cap on concurrent connections, an
    admission-control cap on requests in flight {e before} any
    enforcement pipeline runs (excess answered with an ["overloaded"]
    error, never queued), a per-connection protocol-error budget, and a
    frame-size limit. {!stop} drains gracefully: stop accepting, let
    in-flight requests finish (up to a timeout), unblock idle readers,
    join every connection thread. *)

type config = {
  max_connections : int;
      (** concurrent connections; excess are refused at accept *)
  max_in_flight : int;
      (** requests being served at once across all connections — the
          backpressure bound in front of {!Axml_peer.Enforcement.Pipeline} *)
  max_frame_bytes : int;   (** per-request payload bound, both protocols *)
  error_budget : int;
      (** undecodable-but-framed requests tolerated per connection
          before it is closed *)
  drain_timeout_s : float; (** how long {!stop} waits for in-flight work *)
}

val default_config : config
(** 64 connections, 32 in flight, {!Wire.default_max_frame_bytes},
    error budget 8, 5 s drain. *)

type t

val start : ?config:config -> ?host:string -> ?port:int -> Endpoint.t -> t
(** Bind (default [127.0.0.1], port [0] = ephemeral), listen, and serve
    on background threads until {!stop}.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val endpoint : t -> Endpoint.t

val connections : t -> int
(** Connections currently open. *)

val in_flight : t -> int
(** Requests currently being served. *)

val stop : t -> unit
(** Graceful shutdown; idempotent. Returns once every connection thread
    has been joined — no threads or fds outlive it. *)

(** {1 HTTP routes}

    - [GET /metrics] — Prometheus text for the default registry
    - [GET /metrics.json] — the same registry as JSON
    - [GET /health] — ["ok"], 200
    - [POST /exchange?as=NAME] — body is one intensional document in XML;
      it is validated against the {e server peer's own schema} and stored
      under [NAME] (default ["inbox"]). [200] on accept, [422] with one
      violation per line on refusal, [503] when overloaded. *)
