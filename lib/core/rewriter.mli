(** The full rewriting engine of Sections 3-5: given a document (or a
    word) of the sender schema [s0] and an agreed exchange schema
    [target], decide safe / possible rewritability and materialize the
    document accordingly.

    A rewriter is a thin view over a compiled {!Contract}: all
    word-level analyses go through the contract's memo table, so the
    same children word is analyzed once per contract, not once per
    occurrence. Build the contract yourself ({!Contract.create} +
    {!of_contract}) to share it across rewriters, enforcement pipelines
    and batches; or let {!create} build a private one.

    The tree algorithm follows Section 4: parameters of function nodes
    are rewritten against their [tau_in] before the function may fire
    (deepest first); every node's children word is rewritten against the
    content model of its type. Materialization carries the remaining
    rewriting budget (Definition 7): the top of the document runs at the
    contract's k, and a forest returned by a round-r invocation is
    re-enforced at depth k-r — at depth 1 returned forests are spliced
    in as-is (footnote 5). *)

type engine = Contract.engine =
  | Eager  (** the literal algorithm of Figure 3 *)
  | Lazy   (** the pruned on-the-fly variant of Section 7 *)

type t

val create :
  ?k:int -> ?engine:engine -> ?predicate:(string -> string -> bool) ->
  s0:Axml_schema.Schema.t -> target:Axml_schema.Schema.t -> unit -> t
(** [k] is the rewriting depth (Definition 7, default 1); [predicate]
    answers function-pattern predicates. Compiles a private contract.
    @raise Axml_schema.Schema.Schema_error when [s0] and [target]
    disagree on a common function signature. *)

val of_contract : Contract.t -> t
(** View an existing compiled contract as a rewriter (shares its
    analysis cache). *)

val contract : t -> Contract.t

val env : t -> Axml_schema.Schema.env

val element_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled content model of a label in the {e target} schema. *)

val input_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled input type of a function, from the merged environment. *)

(** {1 Word level}

    Thin views over the contract, kept for compatibility; new code
    should prefer {!Contract.analyze} / {!Contract.safe_analysis} on
    the shared contract directly.

    @deprecated Use the {!Contract} entry points. *)

val word_product :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Product.t

val word_safe_analysis :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Marking.t
(** Equivalent to {!Contract.safe_analysis} on {!contract} (cached). *)

val word_possible_analysis :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Possible.t
(** Equivalent to {!Contract.possible_analysis} on {!contract} (cached). *)

val word_is_safe :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool

val word_is_possible :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool

(** {1 Tree-level verdicts} *)

type reason =
  | Unknown_element of string
  | Unknown_function of string
  | Unsafe_word of { context : string; word : Axml_schema.Symbol.t list }
  | Impossible_word of { context : string; word : Axml_schema.Symbol.t list }
  | Root_mismatch of { expected : string; found : string }
  | Execution_failed of { context : string }
      (** a possible rewriting died on the actual answers *)
  | Unrewritable_output of { context : string; fname : string }
      (** a service's (well-typed) result could not be rewritten into
          the target within the remaining depth budget — a genuine
          k-bounded verdict, not a fault; raising k may clear it *)
  | Ill_typed_service of { context : string; fname : string }
      (** a service broke its declared output type (the offender is
          identified by re-validating cached results, see
          {!Execute.run}) *)
  | Service_failure of
      { context : string; fname : string; attempts : int; message : string }
      (** a service call raised / gave up after [attempts] tries *)
  | Invariant_failure of { context : string; detail : string }
      (** the engine contradicted its own analysis *)
  | Invalid_root_forest of { width : int }
      (** pre-materializing the root returned [width] <> 1 roots *)

type failure = { at : Document.path; reason : reason }

val pp_reason : reason Fmt.t
val pp_failure : failure Fmt.t

val reason_is_fault : reason -> bool
(** Environment faults (service misbehaviour, engine invariant breach)
    as opposed to genuine rewritability verdicts. Fault failures should
    not downgrade a document to "not rewritable" — they are transient
    or infrastructural. *)

val failure_is_fault : failure -> bool

type mode = Safe | Possible_mode

(** {2 The unified static check}

    One entry point replaces the old [check_safe] / [check_possible] /
    [check_mixed] triple: pick the mode, get a structured report
    (verdict, failures, and the contract-cache activity the check
    caused). *)

type check_mode =
  | Check_safe       (** every children word must rewrite {e safely} *)
  | Check_possible   (** every children word must rewrite {e possibly} *)
  | Check_mixed of {
      eager_calls : string -> bool;
      invoker : Execute.invoker;
    }
    (** Section 5: pre-fire the [eager_calls] services, then check
        safely on what remains. *)

type check_report = {
  ok : bool;                 (** [failures = []] *)
  failures : failure list;   (** prefix order *)
  cache : Contract.stats;    (** cache activity during this check
                                 (deltas; [entries] is absolute) *)
}

val check : ?mode:check_mode -> ?k:int -> t -> Document.t -> check_report
(** Static check, no invocation (except the eager calls of
    [Check_mixed]). Default mode is [Check_safe]; [?k] overrides the
    contract's rewriting depth for this one check (verdicts at
    different depths are cached separately and never alias). *)

(** {2 Deprecated shims}

    Thin wrappers over {!check}, kept so existing callers build.
    @deprecated Use {!check}. *)

val check_safe : t -> Document.t -> failure list
(** [(check ~mode:Check_safe t doc).failures]. *)

val check_possible : t -> Document.t -> failure list
val is_safe : t -> Document.t -> bool
val is_possible : t -> Document.t -> bool

val check_mixed :
  t -> eager_calls:(string -> bool) -> invoker:Execute.invoker ->
  Document.t -> failure list

(** {1 Materialization} *)

type located_invocation = { at : Document.path; invocation : Execute.invocation }

exception Failed of failure

val materialize :
  ?mode:mode -> ?k:int -> t -> invoker:Execute.invoker -> Document.t ->
  (Document.t * located_invocation list, failure list) result
(** In [Safe] mode success is guaranteed once the check passes and the
    services behave; service misbehaviour surfaces as a typed fault
    ([Ill_typed_service] / [Service_failure], see {!failure_is_fault})
    instead of an exception. In [Possible_mode] a run-time failure
    surfaces as [Execution_failed].

    [?k] overrides the contract's rewriting depth. At depth > 1 every
    returned forest is re-enforced against the remaining budget
    (depth − 1) before being spliced in; a result no budget can
    rewrite makes the walk backtrack, and if no path survives the
    failure is [Unrewritable_output]. At depth 1 results are spliced
    as returned (footnote 5). *)

(** {1 Document-level minimal-k} *)

type doc_minimal = {
  safe_k : int option;
      (** smallest k at which every children word checks safe *)
  possible_k : int option;
      (** smallest k at which every children word checks possible *)
}

val minimal_k : ?max_k:int -> t -> Document.t -> doc_minimal
(** The smallest rewriting depth at which the {e static} check of the
    whole document passes, i.e. the max over its words' per-word
    minima ({!Contract.minimal_k}); [None] when some word stays
    unsafe/impossible even at [max_k] (default: the contract's k), or
    when the document mentions unknown labels/functions or the wrong
    root — those no depth can fix. A capacity-planning signal: it is
    what the pipeline surfaces as min-k stats and
    [axml_enforce_min_k_total]. *)

(** {1 The mixed approach (Section 5)} *)

val pre_materialize :
  t -> eager_calls:(string -> bool) -> invoker:Execute.invoker ->
  Document.t -> (Document.t * located_invocation list, failure) result
(** Invoke up-front every call whose function satisfies [eager_calls]
    (recursively, budget-bounded), splicing actual results: the concrete
    answers replace the signature automata, shrinking A_w^k. Eager
    calls hit real services, so their failures come back as typed
    [Error] faults ([Service_failure], or [Invalid_root_forest] when the
    root call expands to a non-singleton forest) instead of escaping. *)

val materialize_mixed :
  ?k:int -> t -> eager_calls:(string -> bool) -> invoker:Execute.invoker ->
  Document.t ->
  (Document.t * located_invocation list, failure list) result
