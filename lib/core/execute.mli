(** Executing a word-level rewriting against real services (steps 19-23
    of Figure 3 and 7-10 of Figure 9).

    The materializer walks the concrete children forest left-to-right,
    tracking the corresponding product node. At every function
    occurrence the strategy decides between the fork options:
    - {!Follow_safe} follows only unmarked nodes; the game guarantees
      the walk cannot get stuck, whatever honest services return;
    - {!Follow_possible} follows only live nodes and backtracks when a
      call's actual return leaves every live path.

    A call fires at most once per occurrence: results are cached, so
    backtracking re-examines recorded outputs instead of re-firing side
    effects.

    Service misbehaviour never escapes as an exception: {!run} returns a
    typed {!failure} report. An invoker exception marks that fork option
    as unavailable (the walk backtracks to sibling options); a failed
    SAFE walk identifies the contract-breaking invocation by
    re-validating every cached result against its declared output
    type. *)

type invoker = string -> Document.forest -> Document.forest
(** [invoker name params] performs the service call. *)

exception Invocation_failed of { fname : string; attempts : int; cause : exn }
(** The structured give-up report a resilient invoker (e.g.
    [Axml_services.Resilience]) raises after exhausting its policy:
    [attempts] physical tries, last [cause]. Any other exception raised
    by an invoker is treated as a single-attempt failure. *)

type invocation = {
  inv_name : string;
  inv_params : Document.forest;
  inv_result : Document.forest;
}

type strategy =
  | Follow_safe of Marking.t
  | Follow_possible of Possible.t

type failure =
  | Ill_typed_output of invocation
      (** a service broke its WSDL contract during a safe execution; the
          invocation is the one whose cached result fails validation
          against its declared output type *)
  | Unrewritable_output of invocation
      (** a service's (well-typed) result could not be rewritten into
          the target within the remaining depth budget, and no
          surviving path avoids the call — only possible when [run] is
          given [?reenforce] *)
  | Service_error of { fname : string; attempts : int; cause : exn }
      (** a service call raised and no surviving path avoids it *)
  | No_possible_path
      (** a possible-rewriting attempt died on the actual answers *)
  | Invariant_violation of string
      (** the walk contradicted its own analysis — e.g. a SAFE walk
          failed with zero invocations, or with only well-typed ones *)

val pp_failure : failure Fmt.t

type outcome = {
  materialized : Document.forest;
  invocations : invocation list;  (** chronological *)
}

val run :
  ?plan:(int -> float) -> ?fee:(string -> float) ->
  ?validate:(string -> Document.forest -> bool) ->
  ?reenforce:(string -> Document.forest -> Document.forest option) ->
  strategy -> invoker -> Document.forest -> (outcome, failure) result
(** [Error No_possible_path] means a possible-rewriting attempt failed
    at run time (it cannot happen in safe mode with honest services —
    safe-mode failures surface as [Ill_typed_output] / [Service_error] /
    [Invariant_violation] instead).

    [plan] optionally estimates, per product node, the remaining
    invocation fees (e.g. [Cost.possible_costs]); alternatives are then
    tried cheapest first — the cost minimization of Figure 3 step 23 /
    Figure 9 step (d) — instead of the default keep-first greedy order.
    [fee] prices an invoke option's immediate cost.

    [validate fname forest] decides whether [forest] is an output
    instance of [fname]'s declared type (e.g. via
    [Validate.output_instance]); it is consulted only post mortem to
    name the offender of a failed SAFE walk. Without it the most recent
    invocation is blamed.

    [reenforce fname returned] rewrites a raw service return against
    the remaining rewriting-depth budget (k-bounded enforcement: a
    round-r result must itself land in the target within k−r further
    rounds). [Some enforced] is spliced into the walk in place of the
    raw forest; [None] marks the fork option unavailable — the walk
    backtracks, and if no path survives the failure is
    {!Unrewritable_output} naming the first refused invocation. An
    exception from [reenforce] is classified like a service failure.
    Without [reenforce], results are spliced as returned (footnote-5
    behaviour, correct only at depth 1). *)
