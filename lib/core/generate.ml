(* Random instance generation: documents, output instances and words
   drawn from a schema. Drives the property-based tests and the
   adversarial / random service oracles ("the adversary picks any output
   instance" in Definition 4). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

exception Generation_failed of string

type t = {
  env : Schema.env;
  schema : Schema.t;
  rng : Random.State.t;
  max_depth : int;     (* hard recursion cutoff *)
  call_probability : float;
    (* when a content model offers both a function and its materialized
       alternative, how often sampling keeps the function *)
  fuel : int;
    (* star-unrolling budget at the root, decaying with depth: the size
       knob workload mixes turn to fatten or thin documents *)
}

let create ?(seed = 0x5eed) ?(max_depth = 24) ?(call_probability = 0.5)
    ?(fuel = 4) ?env schema =
  let env = match env with Some e -> e | None -> Schema.env_of_schema schema in
  { env; schema; rng = Random.State.make [| seed |]; max_depth;
    call_probability; fuel }

let rand_int g n = if n <= 0 then 0 else Random.State.int g.rng n

(* Sample a word of a compiled content model. Star unrollings are fuel
   bounded so sampling always terminates. *)
let sample_word g ?(fuel = 6) (regex : Symbol.t R.t) : Symbol.t list =
  match Auto.sample_word ~rand_int:(rand_int g) ~fuel regex with
  | Some w -> w
  | None -> raise (Generation_failed "content model has an empty language")

let random_data g =
  let pool = [| "alpha"; "beta"; "42"; "Paris"; "2003-06-09"; "x" |] in
  pool.(rand_int g (Array.length pool))

(* Generate a subtree for one word letter; [depth] bounds recursion. *)
let rec tree_for_symbol g depth (sym : Symbol.t) : Document.t =
  if depth > g.max_depth then
    raise (Generation_failed "schema recursion exceeds the generation depth limit");
  match sym with
  | Symbol.Data -> Document.data (random_data g)
  | Symbol.Label label ->
    (match Schema.find_element g.schema label with
     | None ->
       raise (Generation_failed (Fmt.str "no declaration for element %S" label))
     | Some content ->
       let regex = Schema.compile_content g.env content in
       let word = sample_word g ~fuel:(max 0 (g.fuel - depth / 4)) regex in
       Document.elem label (List.map (tree_for_symbol g (depth + 1)) word))
  | Symbol.Fun fname ->
    (match Schema.String_map.find_opt fname g.env.Schema.env_functions with
     | None ->
       raise (Generation_failed (Fmt.str "no declaration for function %S" fname))
     | Some f ->
       let regex = Schema.compile_content g.env f.Schema.f_input in
       let word = sample_word g ~fuel:(max 0 (g.fuel - 1 - depth / 4)) regex in
       Document.call fname (List.map (tree_for_symbol g (depth + 1)) word))

(* A random instance of element type [label]. *)
let instance g label = tree_for_symbol g 0 (Symbol.Label label)

(* A random document for the schema's distinguished root. *)
let document g =
  match g.schema.Schema.root with
  | Some root -> instance g root
  | None -> raise (Generation_failed "the schema declares no root label")

(* A random output instance of function [fname]: what an honest service
   implementing the signature may return (Definition 3). *)
let output_instance g fname : Document.forest =
  match Schema.String_map.find_opt fname g.env.Schema.env_functions with
  | None -> raise (Generation_failed (Fmt.str "no declaration for function %S" fname))
  | Some f ->
    let regex = Schema.compile_content g.env f.Schema.f_output in
    let word = sample_word g regex in
    List.map (tree_for_symbol g 0) word

(* A random input instance of [fname] (valid call parameters). *)
let input_instance g fname : Document.forest =
  match Schema.String_map.find_opt fname g.env.Schema.env_functions with
  | None -> raise (Generation_failed (Fmt.str "no declaration for function %S" fname))
  | Some f ->
    let regex = Schema.compile_content g.env f.Schema.f_input in
    let word = sample_word g regex in
    List.map (tree_for_symbol g 0) word
