(* A compiled exchange contract (see contract.mli): the schema-derived
   artifacts for a fixed (s0, target, k, engine) quadruple, plus a
   bounded memo table from (content-model regex, children word) to the
   safe/possible analyses — the amortization that lets a peer's
   enforcement module pay the automata construction once per distinct
   word instead of once per document.

   Domain safety: all mutable state (the regex memo tables, the FIFO
   analysis cache and its counters) sits behind [lock], and uncached
   analyses are computed while holding it, so concurrent callers see
   each (word, kind) computed exactly once and the counters never
   tear. The returned analyses carry lazily-extended products that are
   NOT safe to execute from several domains at once — parallel
   pipelines give each domain its own [clone] instead (see
   DESIGN.md). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

(* Process-wide registry children; per-contract windows stay in the
   mutable [t] fields below and [stats] keeps serving them. *)
let m_analyses kind result =
  Metrics.counter
    ~help:"Word-level analyses, by kind and memo-table outcome"
    ~labels:[ ("kind", kind); ("result", result) ]
    "axml_contract_analyses_total"

let m_safe_hit = m_analyses "safe" "hit"
let m_safe_miss = m_analyses "safe" "miss"
let m_possible_hit = m_analyses "possible" "hit"
let m_possible_miss = m_analyses "possible" "miss"

let m_evictions =
  Metrics.counter ~help:"Analysis-cache entries evicted (FIFO, capacity hit)"
    "axml_contract_cache_evictions_total"

let h_analysis kind =
  Metrics.histogram
    ~help:"Seconds to compute one uncached word-level analysis"
    ~labels:[ ("kind", kind) ]
    "axml_contract_analysis_seconds"

let h_safe = h_analysis "safe"
let h_possible = h_analysis "possible"

type engine = Eager | Lazy

module Sym_id = Axml_schema.Sym_id
module Dense = Auto.Dfa.Dense

(* Analyses are memoized by (content-model regex, word, depth): the
   same word can be unsafe at k=1 and safe at k=2, so verdicts at
   different depths must never alias.

   The cache-hit path is the hottest line of warm enforcement, so the
   key avoids touching the regex tree entirely: content-model regexes
   are interned to small per-contract ids (physical equality first —
   [element_regex]/[input_regex] memoize, so the same regex value comes
   back on every call — structural equality as the slow fallback), and
   the word goes through the polymorphic hash (one C-level traversal,
   much cheaper than per-symbol table lookups). A probe therefore costs
   one hash of the word plus a handful of int compares. *)
module Key = struct
  type t = { rid : int; k : int; h : int; word : Symbol.t list }

  let equal a b =
    a.h = b.h && a.rid = b.rid && a.k = b.k
    && (try List.for_all2 Symbol.equal a.word b.word
        with Invalid_argument _ -> false)

  let hash a = a.h
end

let make_key ~rid ~k word =
  let h =
    (Hashtbl.hash word lxor (rid * 0x9e3779b1) lxor (k * 0x85ebca6b))
    land max_int
  in
  { Key.rid; k; h; word }

module Tbl = Hashtbl.Make (Key)

(* Both analyses of one word share the cache slot: a word that was
   checked safe and then (because unsafe) checked possible costs one
   entry. *)
type entry = {
  mutable e_safe : Marking.t option;
  mutable e_possible : Possible.t option;
}

type t = {
  env : Schema.env;
  s0 : Schema.t;
  target : Schema.t;
  k : int;
  engine : engine;
  capacity : int;
  lock : Mutex.t;  (* guards every mutable field below *)
  element_regexes : (string, Symbol.t R.t option) Hashtbl.t;
  input_regexes : (string, Symbol.t R.t option) Hashtbl.t;
  mutable regexes : Symbol.t R.t array;  (* interned cache-key regexes *)
  dense : (int, Dense.dense) Hashtbl.t;  (* regex id -> membership tables *)
  cache : entry Tbl.t;
  order : Key.t Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(k = 1) ?(engine = Lazy) ?predicate ?(cache_capacity = 4096)
    ~s0 ~target () =
  let env = Schema.env_of_schemas ?predicate s0 target in
  { env; s0; target; k; engine;
    capacity = max 1 cache_capacity;
    lock = Mutex.create ();
    element_regexes = Hashtbl.create 16;
    input_regexes = Hashtbl.create 16;
    regexes = [||];
    dense = Hashtbl.create 16;
    cache = Tbl.create 64;
    order = Queue.create ();
    hits = 0; misses = 0; evictions = 0 }

(* A private contract over the same immutable compiled schemas: the
   merged environment, schema values and (already compiled) content
   regexes are shared, the analysis cache and counters start fresh.
   This is what parallel pipelines hand each worker domain, so cached
   analyses — whose products are extended in place during execution —
   are never shared across domains. *)
let clone (t : t) =
  Mutex.protect t.lock (fun () ->
      { t with
        lock = Mutex.create ();
        element_regexes = Hashtbl.copy t.element_regexes;
        input_regexes = Hashtbl.copy t.input_regexes;
        dense = Hashtbl.copy t.dense;
        cache = Tbl.create 64;
        order = Queue.create ();
        hits = 0; misses = 0; evictions = 0 })

let env t = t.env
let s0 t = t.s0
let target t = t.target
let k t = t.k
let engine t = t.engine

(* ------------------------------------------------------------------ *)
(* Static artifacts                                                    *)
(* ------------------------------------------------------------------ *)

let memo lock table key compute =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some v -> v
      | None ->
        let v = compute () in
        Hashtbl.add table key v;
        v)

let element_regex t label =
  memo t.lock t.element_regexes label (fun () ->
      Option.map (Schema.compile_content t.env) (Schema.find_element t.target label))

let input_regex t fname =
  memo t.lock t.input_regexes fname (fun () ->
      Option.map
        (fun (f : Schema.func) -> Schema.compile_content t.env f.Schema.f_input)
        (Schema.String_map.find_opt fname t.env.Schema.env_functions))

type context = Element of string | Input of string

let pp_context ppf = function
  | Element l -> Fmt.pf ppf "<%s>" l
  | Input f -> Fmt.pf ppf "%s()" f

exception Unknown_context of context

let context_regex t = function
  | Element l -> element_regex t l
  | Input f -> input_regex t f

(* ------------------------------------------------------------------ *)
(* The analysis cache                                                  *)
(* ------------------------------------------------------------------ *)

let product ?k t ~target_regex word =
  let k = Option.value k ~default:t.k in
  let fork = Fork_automaton.build ~env:t.env ~k word in
  let nfa = Auto.Nfa.glushkov target_regex in
  Product.create ~fork ~target:nfa

(* The id of a content-model regex in the interned key registry. The
   registry is append-only and tiny (one slot per distinct content
   model), and growth replaces the array rather than mutating it, so a
   clone sharing the parent's array never observes a write. Caller
   holds [t.lock]. *)
let regex_id t r =
  let arr = t.regexes in
  let n = Array.length arr in
  let rec phys i = if i >= n then -1 else if arr.(i) == r then i else phys (i + 1) in
  match phys 0 with
  | id when id >= 0 -> id
  | _ ->
    let rec structural i =
      if i >= n then -1
      else if R.equal Symbol.equal arr.(i) r then i
      else structural (i + 1)
    in
    (match structural 0 with
     | id when id >= 0 -> id
     | _ ->
       let bigger = Array.make (n + 1) r in
       Array.blit arr 0 bigger 0 n;
       t.regexes <- bigger;
       n)

(* The queue mirrors the table exactly (keys are enqueued once, on
   entry creation, and leave only through eviction or [clear]), so the
   queue front is always the oldest resident entry. Caller holds
   [t.lock]. *)
let entry t ~target_regex ~k word =
  let key = make_key ~rid:(regex_id t target_regex) ~k word in
  match Tbl.find_opt t.cache key with
  | Some e -> e
  | None ->
    if Tbl.length t.cache >= t.capacity then begin
      let oldest = Queue.pop t.order in
      Tbl.remove t.cache oldest;
      t.evictions <- t.evictions + 1;
      Metrics.inc m_evictions
    end;
    let e = { e_safe = None; e_possible = None } in
    Tbl.add t.cache key e;
    Queue.push key t.order;
    e

(* Dense id of one child without building a Symbol.t. *)
let child_sym_id = function
  | Document.Elem { label; _ } -> Sym_id.of_label label
  | Document.Data _ -> Sym_id.data
  | Document.Call { name; _ } -> Sym_id.of_fun name

(* Membership of a children forest in [target_regex], stepped through
   compiled dense tables memoized per interned regex id. Acceptance
   means the identity rewriting (keep every child, invoke nothing)
   already lands in the target language: the word is trivially both
   safely and possibly rewritable at every depth, and the keep-first
   executor returns it unchanged. Hot paths use this to bypass the game
   analyses entirely for already-conforming words. *)
let children_accepted t ~target_regex (children : Document.forest) =
  Mutex.protect t.lock @@ fun () ->
  let rid = regex_id t target_regex in
  let d =
    match Hashtbl.find_opt t.dense rid with
    | Some d -> d
    | None ->
      let d =
        Dense.compile ~sym_id:Sym_id.of_symbol (Auto.Dfa.of_regex target_regex)
      in
      Hashtbl.add t.dense rid d;
      d
  in
  let rec run s = function
    | [] -> Dense.is_final d s
    | c :: rest -> s >= 0 && run (Dense.step_id d s (child_sym_id c)) rest
  in
  run (Dense.start d) children

(* Uncached analyses are computed while still holding [t.lock]: slower
   under contention than a compute-outside-retry scheme, but it keeps
   the counters exact (each (word, kind) is computed at most once
   process-wide), which the qcheck reference model relies on. Parallel
   pipelines avoid the contention entirely by running on [clone]s. *)
let safe_analysis ?k t ~target_regex word =
  let k = Option.value k ~default:t.k in
  Mutex.protect t.lock @@ fun () ->
  let e = entry t ~target_regex ~k word in
  match e.e_safe with
  | Some a ->
    t.hits <- t.hits + 1;
    Metrics.inc m_safe_hit;
    if Trace.enabled Trace.default then
      Trace.emit (Cache_query { cache = "safe"; hit = true });
    a
  | None ->
    t.misses <- t.misses + 1;
    Metrics.inc m_safe_miss;
    if Trace.enabled Trace.default then
      Trace.emit (Cache_query { cache = "safe"; hit = false });
    let a =
      Metrics.time h_safe (fun () ->
          let p = product ~k t ~target_regex word in
          match t.engine with
          | Eager -> Marking.analyze_eager p
          | Lazy -> Marking.analyze_lazy p)
    in
    e.e_safe <- Some a;
    a

let possible_analysis ?k t ~target_regex word =
  let k = Option.value k ~default:t.k in
  Mutex.protect t.lock @@ fun () ->
  let e = entry t ~target_regex ~k word in
  match e.e_possible with
  | Some a ->
    t.hits <- t.hits + 1;
    Metrics.inc m_possible_hit;
    if Trace.enabled Trace.default then
      Trace.emit (Cache_query { cache = "possible"; hit = true });
    a
  | None ->
    t.misses <- t.misses + 1;
    Metrics.inc m_possible_miss;
    if Trace.enabled Trace.default then
      Trace.emit (Cache_query { cache = "possible"; hit = false });
    let a =
      Metrics.time h_possible (fun () ->
          Possible.analyze (product ~k t ~target_regex word))
    in
    e.e_possible <- Some a;
    a

let is_safe ?k t ~target_regex word =
  (safe_analysis ?k t ~target_regex word).Marking.safe

let is_possible ?k t ~target_regex word =
  (possible_analysis ?k t ~target_regex word).Possible.possible

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

type verdict = Safe | Possible_only | Impossible

let pp_verdict ppf = function
  | Safe -> Fmt.string ppf "safe"
  | Possible_only -> Fmt.string ppf "possible (not safe)"
  | Impossible -> Fmt.string ppf "impossible"

let analyze ?k t ~context word =
  match context_regex t context with
  | None -> raise (Unknown_context context)
  | Some target_regex ->
    if is_safe ?k t ~target_regex word then Safe
    else if is_possible ?k t ~target_regex word then Possible_only
    else Impossible

(* ------------------------------------------------------------------ *)
(* Minimal-k search                                                    *)
(* ------------------------------------------------------------------ *)

type minimal = { safe_at : int option; possible_at : int option }

(* Player options only grow with the depth (A_w^{k+1} contains every
   strategy of A_w^k; the adversary's choices are fixed by the output
   types), so safety and possibility are monotone in k and the first
   depth that answers "yes" is the minimum. k=0 is a legal start: the
   fork automaton degenerates to the linear word automaton, so
   [safe_at = Some 0] means the word already conforms extensionally. *)
let minimal_k ?max_k t ~target_regex word =
  let max_k = match max_k with Some m -> max 0 m | None -> t.k in
  let rec find pred k =
    if k > max_k then None
    else if pred k then Some k
    else find pred (k + 1)
  in
  let possible_at = find (fun k -> is_possible ~k t ~target_regex word) 0 in
  let safe_at =
    (* Safe implies possible, so the safe search can start where the
       possible one succeeded — and is hopeless if nothing is possible. *)
    match possible_at with
    | None -> None
    | Some p -> find (fun k -> is_safe ~k t ~target_regex word) p
  in
  { safe_at; possible_at }

(* ------------------------------------------------------------------ *)
(* Cache accounting                                                    *)
(* ------------------------------------------------------------------ *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats (t : t) =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        entries = Tbl.length t.cache })

let add_stats a b =
  { hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    entries = a.entries + b.entries }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let diff_stats ~before after =
  { hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    entries = after.entries }

let pp_stats ppf s =
  Fmt.pf ppf "%d hits / %d misses (%.1f%% hit rate), %d entries, %d evicted"
    s.hits s.misses (100. *. hit_rate s) s.entries s.evictions

let reset_stats (t : t) =
  Mutex.protect t.lock (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let clear (t : t) =
  Mutex.protect t.lock (fun () ->
      Tbl.reset t.cache;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
