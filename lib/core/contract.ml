(* A compiled exchange contract (see contract.mli): the schema-derived
   artifacts for a fixed (s0, target, k, engine) quadruple, plus a
   bounded memo table from (content-model regex, children word) to the
   safe/possible analyses — the amortization that lets a peer's
   enforcement module pay the automata construction once per distinct
   word instead of once per document.

   Domain safety: all mutable state (the regex memo tables, the FIFO
   analysis cache and its counters) sits behind [lock], and uncached
   analyses are computed while holding it, so concurrent callers see
   each (word, kind) computed exactly once and the counters never
   tear. The returned analyses carry lazily-extended products that are
   NOT safe to execute from several domains at once — parallel
   pipelines give each domain its own [clone] instead (see
   DESIGN.md). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

(* Process-wide registry children; per-contract windows stay in the
   mutable [t] fields below and [stats] keeps serving them. *)
let m_analyses kind result =
  Metrics.counter
    ~help:"Word-level analyses, by kind and memo-table outcome"
    ~labels:[ ("kind", kind); ("result", result) ]
    "axml_contract_analyses_total"

let m_safe_hit = m_analyses "safe" "hit"
let m_safe_miss = m_analyses "safe" "miss"
let m_possible_hit = m_analyses "possible" "hit"
let m_possible_miss = m_analyses "possible" "miss"

let m_evictions =
  Metrics.counter ~help:"Analysis-cache entries evicted (FIFO, capacity hit)"
    "axml_contract_cache_evictions_total"

let h_analysis kind =
  Metrics.histogram
    ~help:"Seconds to compute one uncached word-level analysis"
    ~labels:[ ("kind", kind) ]
    "axml_contract_analysis_seconds"

let h_safe = h_analysis "safe"
let h_possible = h_analysis "possible"

type engine = Eager | Lazy

(* Analyses are memoized by (content-model regex, word, depth): the
   same word can be unsafe at k=1 and safe at k=2, so verdicts at
   different depths must never alias. Regexes are pure symbol trees,
   so structural equality is exact; [Hashtbl.hash] only inspects a
   bounded prefix of the structure, which is fine — collisions fall
   back to full structural equality. *)
module Key = struct
  type t = Symbol.t R.t * Symbol.t list * int

  let equal (r1, w1, k1) (r2, w2, k2) =
    k1 = k2
    && (try List.for_all2 Symbol.equal w1 w2 with Invalid_argument _ -> false)
    && R.equal Symbol.equal r1 r2

  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

(* Both analyses of one word share the cache slot: a word that was
   checked safe and then (because unsafe) checked possible costs one
   entry. *)
type entry = {
  mutable e_safe : Marking.t option;
  mutable e_possible : Possible.t option;
}

type t = {
  env : Schema.env;
  s0 : Schema.t;
  target : Schema.t;
  k : int;
  engine : engine;
  capacity : int;
  lock : Mutex.t;  (* guards every mutable field below *)
  element_regexes : (string, Symbol.t R.t option) Hashtbl.t;
  input_regexes : (string, Symbol.t R.t option) Hashtbl.t;
  cache : entry Tbl.t;
  order : Key.t Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(k = 1) ?(engine = Lazy) ?predicate ?(cache_capacity = 4096)
    ~s0 ~target () =
  let env = Schema.env_of_schemas ?predicate s0 target in
  { env; s0; target; k; engine;
    capacity = max 1 cache_capacity;
    lock = Mutex.create ();
    element_regexes = Hashtbl.create 16;
    input_regexes = Hashtbl.create 16;
    cache = Tbl.create 64;
    order = Queue.create ();
    hits = 0; misses = 0; evictions = 0 }

(* A private contract over the same immutable compiled schemas: the
   merged environment, schema values and (already compiled) content
   regexes are shared, the analysis cache and counters start fresh.
   This is what parallel pipelines hand each worker domain, so cached
   analyses — whose products are extended in place during execution —
   are never shared across domains. *)
let clone (t : t) =
  Mutex.protect t.lock (fun () ->
      { t with
        lock = Mutex.create ();
        element_regexes = Hashtbl.copy t.element_regexes;
        input_regexes = Hashtbl.copy t.input_regexes;
        cache = Tbl.create 64;
        order = Queue.create ();
        hits = 0; misses = 0; evictions = 0 })

let env t = t.env
let s0 t = t.s0
let target t = t.target
let k t = t.k
let engine t = t.engine

(* ------------------------------------------------------------------ *)
(* Static artifacts                                                    *)
(* ------------------------------------------------------------------ *)

let memo lock table key compute =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some v -> v
      | None ->
        let v = compute () in
        Hashtbl.add table key v;
        v)

let element_regex t label =
  memo t.lock t.element_regexes label (fun () ->
      Option.map (Schema.compile_content t.env) (Schema.find_element t.target label))

let input_regex t fname =
  memo t.lock t.input_regexes fname (fun () ->
      Option.map
        (fun (f : Schema.func) -> Schema.compile_content t.env f.Schema.f_input)
        (Schema.String_map.find_opt fname t.env.Schema.env_functions))

type context = Element of string | Input of string

let pp_context ppf = function
  | Element l -> Fmt.pf ppf "<%s>" l
  | Input f -> Fmt.pf ppf "%s()" f

exception Unknown_context of context

let context_regex t = function
  | Element l -> element_regex t l
  | Input f -> input_regex t f

(* ------------------------------------------------------------------ *)
(* The analysis cache                                                  *)
(* ------------------------------------------------------------------ *)

let product ?k t ~target_regex word =
  let k = Option.value k ~default:t.k in
  let fork = Fork_automaton.build ~env:t.env ~k word in
  let nfa = Auto.Nfa.glushkov target_regex in
  Product.create ~fork ~target:nfa

(* The queue mirrors the table exactly (keys are enqueued once, on
   entry creation, and leave only through eviction or [clear]), so the
   queue front is always the oldest resident entry. Caller holds
   [t.lock]. *)
let entry t ~target_regex ~k word =
  let key = (target_regex, word, k) in
  match Tbl.find_opt t.cache key with
  | Some e -> e
  | None ->
    if Tbl.length t.cache >= t.capacity then begin
      let oldest = Queue.pop t.order in
      Tbl.remove t.cache oldest;
      t.evictions <- t.evictions + 1;
      Metrics.inc m_evictions
    end;
    let e = { e_safe = None; e_possible = None } in
    Tbl.add t.cache key e;
    Queue.push key t.order;
    e

(* Uncached analyses are computed while still holding [t.lock]: slower
   under contention than a compute-outside-retry scheme, but it keeps
   the counters exact (each (word, kind) is computed at most once
   process-wide), which the qcheck reference model relies on. Parallel
   pipelines avoid the contention entirely by running on [clone]s. *)
let safe_analysis ?k t ~target_regex word =
  let k = Option.value k ~default:t.k in
  Mutex.protect t.lock @@ fun () ->
  let e = entry t ~target_regex ~k word in
  match e.e_safe with
  | Some a ->
    t.hits <- t.hits + 1;
    Metrics.inc m_safe_hit;
    Trace.emit (Cache_query { cache = "safe"; hit = true });
    a
  | None ->
    t.misses <- t.misses + 1;
    Metrics.inc m_safe_miss;
    Trace.emit (Cache_query { cache = "safe"; hit = false });
    let a =
      Metrics.time h_safe (fun () ->
          let p = product ~k t ~target_regex word in
          match t.engine with
          | Eager -> Marking.analyze_eager p
          | Lazy -> Marking.analyze_lazy p)
    in
    e.e_safe <- Some a;
    a

let possible_analysis ?k t ~target_regex word =
  let k = Option.value k ~default:t.k in
  Mutex.protect t.lock @@ fun () ->
  let e = entry t ~target_regex ~k word in
  match e.e_possible with
  | Some a ->
    t.hits <- t.hits + 1;
    Metrics.inc m_possible_hit;
    Trace.emit (Cache_query { cache = "possible"; hit = true });
    a
  | None ->
    t.misses <- t.misses + 1;
    Metrics.inc m_possible_miss;
    Trace.emit (Cache_query { cache = "possible"; hit = false });
    let a =
      Metrics.time h_possible (fun () ->
          Possible.analyze (product ~k t ~target_regex word))
    in
    e.e_possible <- Some a;
    a

let is_safe ?k t ~target_regex word =
  (safe_analysis ?k t ~target_regex word).Marking.safe

let is_possible ?k t ~target_regex word =
  (possible_analysis ?k t ~target_regex word).Possible.possible

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

type verdict = Safe | Possible_only | Impossible

let pp_verdict ppf = function
  | Safe -> Fmt.string ppf "safe"
  | Possible_only -> Fmt.string ppf "possible (not safe)"
  | Impossible -> Fmt.string ppf "impossible"

let analyze ?k t ~context word =
  match context_regex t context with
  | None -> raise (Unknown_context context)
  | Some target_regex ->
    if is_safe ?k t ~target_regex word then Safe
    else if is_possible ?k t ~target_regex word then Possible_only
    else Impossible

(* ------------------------------------------------------------------ *)
(* Minimal-k search                                                    *)
(* ------------------------------------------------------------------ *)

type minimal = { safe_at : int option; possible_at : int option }

(* Player options only grow with the depth (A_w^{k+1} contains every
   strategy of A_w^k; the adversary's choices are fixed by the output
   types), so safety and possibility are monotone in k and the first
   depth that answers "yes" is the minimum. k=0 is a legal start: the
   fork automaton degenerates to the linear word automaton, so
   [safe_at = Some 0] means the word already conforms extensionally. *)
let minimal_k ?max_k t ~target_regex word =
  let max_k = match max_k with Some m -> max 0 m | None -> t.k in
  let rec find pred k =
    if k > max_k then None
    else if pred k then Some k
    else find pred (k + 1)
  in
  let possible_at = find (fun k -> is_possible ~k t ~target_regex word) 0 in
  let safe_at =
    (* Safe implies possible, so the safe search can start where the
       possible one succeeded — and is hopeless if nothing is possible. *)
    match possible_at with
    | None -> None
    | Some p -> find (fun k -> is_safe ~k t ~target_regex word) p
  in
  { safe_at; possible_at }

(* ------------------------------------------------------------------ *)
(* Cache accounting                                                    *)
(* ------------------------------------------------------------------ *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats (t : t) =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        entries = Tbl.length t.cache })

let add_stats a b =
  { hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    entries = a.entries + b.entries }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let diff_stats ~before after =
  { hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    entries = after.entries }

let pp_stats ppf s =
  Fmt.pf ppf "%d hits / %d misses (%.1f%% hit rate), %d entries, %d evicted"
    s.hits s.misses (100. *. hit_rate s) s.entries s.evictions

let reset_stats (t : t) =
  Mutex.protect t.lock (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let clear (t : t) =
  Mutex.protect t.lock (fun () ->
      Tbl.reset t.cache;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
