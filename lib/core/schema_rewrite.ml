(* Schema-to-schema safe rewriting (Section 6): can EVERY document of the
   sender schema [s0] (rooted at [root]) be safely rewritten into the
   exchange schema [target]?

   The paper's reduction: testing that all elements of type [l] rewrite
   safely is the same as testing that the single-function word [g_l] —
   where [g_l] is a fresh invocable function whose output type is
   tau_0(l) — rewrites safely, with one extra depth level to pay for the
   synthetic call. The adversary's expansion of [g_l] enumerates exactly
   the children words an instance of [l] may have. One test per label of
   [s0] reachable from the root suffices. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol

type label_verdict = {
  label : string;
  safe : bool;
  reason : string option;
}

type result = {
  compatible : bool;
  verdicts : label_verdict list;  (* one per reachable label *)
}

(* Labels of [s0] reachable from [root]: through content models of
   elements, and through input/output types of the functions and
   patterns they mention (instances may embed calls whose parameters and
   results are also exchanged). *)
let reachable_labels env (s0 : Schema.t) root =
  let seen_labels = ref Schema.String_set.empty in
  let seen_funs = ref Schema.String_set.empty in
  let queue = Queue.create () in
  let add_label l =
    if not (Schema.String_set.mem l !seen_labels) then begin
      seen_labels := Schema.String_set.add l !seen_labels;
      Queue.add (`Label l) queue
    end
  in
  let add_fun f =
    if not (Schema.String_set.mem f !seen_funs) then begin
      seen_funs := Schema.String_set.add f !seen_funs;
      Queue.add (`Fun f) queue
    end
  in
  let visit_content c =
    List.iter
      (fun atom ->
        match atom with
        | Schema.A_label l -> add_label l
        | Schema.A_fun f -> add_fun f
        | Schema.A_pattern p ->
          (match Schema.String_map.find_opt p env.Schema.env_patterns with
           | None -> ()
           | Some pat ->
             List.iter
               (fun (f : Schema.func) -> add_fun f.Schema.f_name)
               (Schema.pattern_members env pat))
        | Schema.A_data -> ()
        | Schema.A_any_element ->
          Schema.String_set.iter add_label env.Schema.env_labels
        | Schema.A_any_fun ->
          Schema.String_map.iter (fun f _ -> add_fun f) env.Schema.env_functions)
      (Schema.atoms_of_content c)
  in
  add_label root;
  while not (Queue.is_empty queue) do
    match Queue.take queue with
    | `Label l ->
      (match Schema.find_element s0 l with
       | Some c -> visit_content c
       | None -> ())
    | `Fun f ->
      (match Schema.String_map.find_opt f env.Schema.env_functions with
       | None -> ()
       | Some func ->
         visit_content func.Schema.f_input;
         visit_content func.Schema.f_output)
  done;
  Schema.String_set.elements !seen_labels

(* A fresh name that collides with nothing declared. *)
let fresh_name env base =
  let rec go i =
    let candidate = Fmt.str "%s#%d" base i in
    if Schema.String_map.mem candidate env.Schema.env_functions then go (i + 1)
    else candidate
  in
  go 0

let check ?(k = 1) ?(engine = Rewriter.Lazy) ?predicate ~(s0 : Schema.t)
    ~root ~(target : Schema.t) () : result =
  (* one merged environment for the whole check: [verdict_of_label] only
     needs it for fresh-name collision avoidance, so recompiling it per
     label (as each verdict used to) was pure waste *)
  let env = Schema.env_of_schemas ?predicate s0 target in
  let verdict_of_label label =
    match Schema.find_element s0 label with
    | None ->
      { label; safe = false;
        reason = Some (Fmt.str "label %S is not declared by the sender schema" label) }
    | Some content0 ->
      (match Schema.find_element target label with
       | None ->
         { label; safe = false;
           reason =
             Some (Fmt.str "label %S is not part of the exchange schema" label) }
       | Some _ ->
         (* extend s0 with the representative function g_label *)
         let gname = fresh_name env ("g_" ^ label) in
         let g = Schema.func gname ~input:Axml_regex.Regex.epsilon ~output:content0 in
         let s0' = Schema.add_function s0 g in
         let rewriter =
           Rewriter.create ~k:(k + 1) ~engine ?predicate ~s0:s0' ~target ()
         in
         (match Rewriter.element_regex rewriter label with
          | None ->
            { label; safe = false;
              reason = Some "exchange schema content model missing" }
          | Some target_regex ->
            let word = [ Symbol.Fun gname ] in
            if Rewriter.word_is_safe rewriter ~target_regex word then
              { label; safe = true; reason = None }
            else
              { label; safe = false;
                reason =
                  Some
                    (Fmt.str
                       "some children word of <%s> allowed by the sender schema \
                        cannot be safely rewritten" label) }))
  in
  let labels = reachable_labels env s0 root in
  let verdicts = List.map verdict_of_label labels in
  { compatible = List.for_all (fun v -> v.safe) verdicts; verdicts }

let compatible ?k ?engine ?predicate ~s0 ~root ~target () =
  (check ?k ?engine ?predicate ~s0 ~root ~target ()).compatible
