(** A minimal growable array (OCaml 5.1 has no stdlib Dynarray), used by
    the on-the-fly product construction where the number of states is
    not known in advance. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Append and return the index of the new element. *)

val ensure : 'a t -> int -> unit
(** Grow the vector to at least the given length, filling fresh slots
    with the dummy. No-op if already long enough. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
