(** Random instance generation: documents, output instances and words
    drawn from a schema. Drives the property-based tests and the
    honest-random service oracles ("the adversary picks any output
    instance", Definition 4). *)

exception Generation_failed of string

type t

val create :
  ?seed:int -> ?max_depth:int -> ?call_probability:float -> ?fuel:int ->
  ?env:Axml_schema.Schema.env -> Axml_schema.Schema.t -> t
(** [max_depth] is a hard recursion cutoff
    (@raise Generation_failed beyond it, e.g. on unboundedly recursive
    schemas). [call_probability] (default [0.5]) is how often sampling
    keeps a function symbol when a content model also offers its
    materialized alternative — the {e call density} of generated
    documents. [fuel] (default [4]) bounds star unrollings at the root,
    decaying with depth — the {e size} knob workload mixes turn to
    fatten or thin documents. *)

val sample_word :
  t -> ?fuel:int -> Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list
(** A random word of a compiled content model; [fuel] bounds star
    unrollings. *)

val instance : t -> string -> Document.t
(** A random instance of an element type. *)

val document : t -> Document.t
(** A random instance of the schema's distinguished root. *)

val output_instance : t -> string -> Document.forest
(** What an honest service implementing the signature may return. *)

val input_instance : t -> string -> Document.forest
(** Valid call parameters for the function. *)
