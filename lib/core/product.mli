(** The cartesian product of A_w^k with the target language automaton,
    built on the fly.

    Instead of materializing the complete deterministic complement of
    the target schema (Figure 3, step c), the right-hand component is
    the {e subset} of target-NFA states reached so far — determinization
    on demand. Every decision the complement DFA would make is available
    locally:
    - the empty subset is exactly the complement's accepting {e sink}
      (the first pruning idea of Section 7 / Figure 12);
    - "complement-accepting" = the subset contains no final state;
    - "target-accepting" (for possible rewriting, Figure 9) = it does.

    Both the eager algorithm of Figure 3 and the lazy variant of
    Section 7 drive this same structure; so does Figure 9's possible
    rewriting. *)

type node = { q : int; subset : int }
(** [q] is an A_w^k state; [subset] an interned set of target states. *)

type t

val create : fork:Fork_automaton.t -> target:Axml_schema.Auto.Nfa.t -> t

val initial : t -> int
val node : t -> int -> node
val node_count : t -> int
(** Product nodes discovered so far (the structure is lazy). *)

val succ : t -> int -> (int * int) array
(** Successors of a node: [(A_w^k edge id, target node id)] pairs, one
    per edge leaving its [q], in out-edge order. Memoized; discovers new
    nodes. The array is owned by the product — do not mutate. *)

val word_done : t -> int -> bool
(** Is [q] the final state of A_w^k (word complete)? *)

val subset_is_dead : t -> int -> bool
(** Empty subset: no continuation can reach the target language — the
    complement's accepting sink. *)

val subset_accepting : t -> int -> bool

val bad_accepting : t -> int -> bool
(** Complete but outside the language: an accepting state of
    A_w^k x complement(R) (SAFE rewriting's bad states). *)

val good_accepting : t -> int -> bool
(** Complete and inside the language (POSSIBLE rewriting's goals). *)

val fork : t -> Fork_automaton.t
