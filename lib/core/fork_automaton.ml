(* The automaton A_w^k of Figure 3 (lines 5-10): a finite representation
   of every word derivable from the children word [w] by a k-depth
   left-to-right rewriting.

   Construction: start from the linear automaton accepting [w] as a
   single word; then, for k rounds, around every untreated edge labeled
   with an invocable function [f], splice a fresh copy of the (Glushkov)
   automaton of tau_out(f), linked by epsilon moves. The edge's source
   becomes a "fork node": keeping the function edge means "do not invoke
   f here", taking the epsilon edge into the copy means "invoke f and the
   adversary (the service) picks a word of its output type". *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

type edge = { src : int; label : Symbol.t option; dst : int }

type fork = {
  fork_node : int;
  fname : string;
  keep_edge : int;      (* id of the function-labeled edge (the "do not invoke" option) *)
  invoke_edge : int;    (* id of the epsilon edge into the copy (the "invoke" option) *)
  copy_finals : Auto.Int_set.t;  (* absolute ids of the copy's accepting states *)
  exit_node : int;      (* the node u the copy exits to *)
  round : int;          (* 1-based round (rewriting depth) that created the copy *)
}

type t = {
  nstates : int;
  start : int;
  final : int;
  edges : edge array;
  out : int list array;             (* outgoing edge ids, by source node *)
  (* CSR twin of [out]: edge ids of node q are
     out_edge.(out_off.(q) .. out_off.(q+1) - 1), same order. The
     product's expansion loop walks these flat arrays together with
     [edge_dst]/[edge_label_id] and allocates nothing per edge. *)
  out_off : int array;              (* nstates + 1 offsets *)
  out_edge : int array;
  edge_dst : int array;             (* edge id -> destination node *)
  edge_label_id : int array;        (* edge id -> dense symbol id, -1 = eps *)
  forks : fork array;
  forks_at : int list array;        (* fork indices, by fork node *)
  fork_of_edge : int array;         (* edge id -> fork index, or -1 *)
  word_length : int;
}

type stats = { states : int; edges : int; forks : int }

let stats (t : t) = { states = t.nstates; edges = Array.length t.edges; forks = Array.length t.forks }

(* [build ~env ~k w] builds A_w^k. Output types are taken from [env]
   (the merged sender + exchange schemas, Section 4's assumption that
   both agree on function definitions). Non-invocable functions and
   functions with no known signature never fork: their edges stay as
   plain letters. *)
let build ~(env : Schema.env) ~k (w : Symbol.t list) =
  let nstates = ref 0 in
  let fresh () = let s = !nstates in incr nstates; s in
  let edges : edge Vec.t = Vec.create ~dummy:{ src = 0; label = None; dst = 0 } in
  let forks : fork Vec.t =
    Vec.create
      ~dummy:{ fork_node = 0; fname = ""; keep_edge = 0; invoke_edge = 0;
               copy_finals = Auto.Int_set.empty; exit_node = 0; round = 0 }
  in
  let add_edge src label dst = Vec.push edges { src; label; dst } in
  (* memoized compiled output NFAs per function name *)
  let output_nfas : (string, Auto.Nfa.t option) Hashtbl.t = Hashtbl.create 8 in
  let output_nfa fname =
    match Hashtbl.find_opt output_nfas fname with
    | Some cached -> cached
    | None ->
      let computed =
        match Schema.String_map.find_opt fname env.Schema.env_functions with
        | None -> None
        | Some f ->
          if not f.Schema.f_invocable then None
          else begin
            let regex = Schema.compile_content env f.Schema.f_output in
            if R.is_empty_language regex then None
            else Some (Auto.Nfa.glushkov regex)
          end
      in
      Hashtbl.add output_nfas fname computed;
      computed
  in
  (* the base word automaton *)
  let start = fresh () in
  let untreated = ref [] in
  let final =
    List.fold_left
      (fun prev sym ->
        let next = fresh () in
        let eid = add_edge prev (Some sym) next in
        (match sym with
         | Symbol.Fun fname ->
           if Option.is_some (output_nfa fname) then untreated := eid :: !untreated
         | Symbol.Label _ | Symbol.Data -> ());
        next)
      start w
  in
  (* k expansion rounds *)
  for round = 1 to k do
    let batch = List.rev !untreated in
    untreated := [];
    List.iter
      (fun keep_eid ->
        let e = Vec.get edges keep_eid in
        let fname =
          match e.label with
          | Some (Symbol.Fun f) -> f
          | Some (Symbol.Label _ | Symbol.Data) | None -> assert false
        in
        match output_nfa fname with
        | None -> ()
        | Some nfa ->
          let offset = !nstates in
          for _ = 1 to nfa.Auto.Nfa.size do ignore (fresh ()) done;
          (* copy the (epsilon-free) Glushkov edges *)
          Auto.Int_map.iter
            (fun src row ->
              Auto.Sym_map.iter
                (fun sym dsts ->
                  Auto.Int_set.iter
                    (fun dst ->
                      let eid = add_edge (offset + src) (Some sym) (offset + dst) in
                      (match sym with
                       | Symbol.Fun g ->
                         if round < k && Option.is_some (output_nfa g) then
                           untreated := eid :: !untreated
                       | Symbol.Label _ | Symbol.Data -> ());
                      ())
                    dsts)
                row)
            nfa.Auto.Nfa.delta;
          let invoke_eid = add_edge e.src None (offset + nfa.Auto.Nfa.start) in
          let copy_finals =
            Auto.Int_set.map (fun q -> offset + q) nfa.Auto.Nfa.finals
          in
          Auto.Int_set.iter
            (fun qf -> ignore (add_edge qf None e.dst))
            copy_finals;
          ignore
            (Vec.push forks
               { fork_node = e.src; fname; keep_edge = keep_eid;
                 invoke_edge = invoke_eid; copy_finals; exit_node = e.dst; round }))
      batch
  done;
  let nstates = !nstates in
  let edges = Array.init (Vec.length edges) (Vec.get edges) in
  let out = Array.make nstates [] in
  Array.iteri (fun eid e -> out.(e.src) <- eid :: out.(e.src)) edges;
  Array.iteri (fun s lst -> out.(s) <- List.rev lst) out;
  (* flatten [out] into CSR form and precompute per-edge dense data *)
  let nedges = Array.length edges in
  let out_off = Array.make (nstates + 1) 0 in
  Array.iter (fun e -> out_off.(e.src + 1) <- out_off.(e.src + 1) + 1) edges;
  for s = 1 to nstates do out_off.(s) <- out_off.(s) + out_off.(s - 1) done;
  let out_edge = Array.make (max 1 nedges) 0 in
  let cursor = Array.copy out_off in
  Array.iteri
    (fun s lst ->
      List.iter
        (fun eid ->
          out_edge.(cursor.(s)) <- eid;
          cursor.(s) <- cursor.(s) + 1)
        lst)
    out;
  let edge_dst = Array.make (max 1 nedges) 0 in
  let edge_label_id = Array.make (max 1 nedges) (-1) in
  Array.iteri
    (fun eid e ->
      edge_dst.(eid) <- e.dst;
      edge_label_id.(eid) <-
        (match e.label with
         | None -> -1
         | Some sym -> Axml_schema.Sym_id.of_symbol sym))
    edges;
  let forks = Array.init (Vec.length forks) (Vec.get forks) in
  let forks_at = Array.make nstates [] in
  let fork_of_edge = Array.make (Array.length edges) (-1) in
  Array.iteri
    (fun fid f ->
      forks_at.(f.fork_node) <- fid :: forks_at.(f.fork_node);
      fork_of_edge.(f.keep_edge) <- fid;
      fork_of_edge.(f.invoke_edge) <- fid)
    forks;
  { nstates; start; final; edges; out; out_off; out_edge; edge_dst;
    edge_label_id; forks; forks_at; fork_of_edge;
    word_length = List.length w }

(* Edge ids leaving [node]. *)
let out_edges (t : t) node = t.out.(node)

let edge (t : t) eid = t.edges.(eid)

let fork_of_edge (t : t) eid =
  let fid = t.fork_of_edge.(eid) in
  if fid < 0 then None else Some t.forks.(fid)

(* The exit epsilon-edge of [fork] leaving [node] (a copy final). *)
let exit_edge (t : t) (f : fork) node =
  List.find_opt
    (fun eid ->
      let e = t.edges.(eid) in
      e.label = None && e.dst = f.exit_node && t.fork_of_edge.(eid) < 0)
    t.out.(node)

let pp ppf (t : t) =
  let s = stats t in
  Fmt.pf ppf "A_w^k: %d states, %d edges, %d forks (|w|=%d)"
    s.states s.edges s.forks t.word_length
