(* The full rewriting engine of Sections 3-5: given a document (or a
   word) of the sender schema [s0] and an agreed exchange schema
   [target], decide safe / possible rewritability and materialize the
   document accordingly.

   Since the analysis of a children word depends only on the contract
   (schemas, k, engine) and the word itself, the engine is a thin view
   over [Contract]: every word-level question goes through the
   contract's memo table, so repeated words — across the nodes of one
   document or across a stream of documents against the same schema
   pair — are answered by lookup.

   Tree algorithm (Section 4): parameters of function nodes are handled
   before the functions themselves (the recursion below materializes a
   node's interior — parameter subtrees included — before rewriting its
   children word, which yields exactly the paper's deepest-first order),
   and every node's children word is rewritten against the content model
   of its type.

   Depth bookkeeping (Definition 7): the walk carries the remaining
   rewriting budget. The top of the document is enforced at the
   contract's k; a forest returned by a round-r invocation is
   re-enforced at depth k-r via [Execute.run]'s [reenforce] hook —
   its nodes' children words must themselves land in the target within
   the remaining rounds. At depth 1 returned forests are spliced in
   as-is (footnote 5: since s0 and the exchange schema agree on
   function signatures, returned data needs no further *word-level*
   rewriting — but its children may still embed calls the target
   forbids, which is exactly the k=1 enforcement gap k>1 closes). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module Sym_id = Axml_schema.Sym_id
module Dense = Auto.Dfa.Dense

type engine = Contract.engine = Eager | Lazy

type t = {
  contract : Contract.t;
  (* validation context over the merged environment, used to identify
     which cached service result broke its declared output type when a
     safe walk fails (see [Execute.run]'s [validate]) *)
  output_ctx : Validate.ctx Lazy.t;
  (* rewriter-local twins of the contract's content-model memos, each
     entry pairing the regex with its dense membership tables. A
     rewriter is single-domain by construction (parallel pipelines give
     every worker domain its own clone), so these tables need no lock —
     the per-node lookups of the tree walks stay mutex-free. *)
  element_entries : (string, (Symbol.t R.t * Dense.dense) option) Hashtbl.t;
  input_entries : (string, (Symbol.t R.t * Dense.dense) option) Hashtbl.t;
}

let of_contract contract =
  { contract;
    output_ctx =
      lazy (Validate.ctx ~env:(Contract.env contract) (Contract.target contract));
    element_entries = Hashtbl.create 16;
    input_entries = Hashtbl.create 16 }

let create ?(k = 1) ?(engine = Lazy) ?predicate ~s0 ~target () =
  of_contract (Contract.create ~k ~engine ?predicate ~s0 ~target ())

let contract t = t.contract

let output_ok t fname forest =
  Validate.output_instance (Lazy.force t.output_ctx) fname forest = []

let env t = Contract.env t.contract
let element_regex t label = Contract.element_regex t.contract label
let input_regex t fname = Contract.input_regex t.contract fname

(* (regex, dense tables) of a content model, memoized locally: one
   unlocked string lookup on the hot path. *)
let memo_entry table fetch key =
  match Hashtbl.find_opt table key with
  | Some e -> e
  | None ->
    let e =
      Option.map
        (fun r ->
          (r, Dense.compile ~sym_id:Sym_id.of_symbol (Auto.Dfa.of_regex r)))
        (fetch key)
    in
    Hashtbl.add table key e;
    e

let element_entry t label =
  memo_entry t.element_entries (Contract.element_regex t.contract) label

let input_entry t fname =
  memo_entry t.input_entries (Contract.input_regex t.contract) fname

(* ------------------------------------------------------------------ *)
(* Word-level interface (views over the contract)                      *)
(* ------------------------------------------------------------------ *)

let word_product t ~target_regex word = Contract.product t.contract ~target_regex word

let word_safe_analysis t ~target_regex word =
  Contract.safe_analysis t.contract ~target_regex word

let word_possible_analysis t ~target_regex word =
  Contract.possible_analysis t.contract ~target_regex word

let word_is_safe t ~target_regex word = Contract.is_safe t.contract ~target_regex word

let word_is_possible t ~target_regex word =
  Contract.is_possible t.contract ~target_regex word

(* ------------------------------------------------------------------ *)
(* Tree-level verdicts                                                 *)
(* ------------------------------------------------------------------ *)

type reason =
  | Unknown_element of string
  | Unknown_function of string
  | Unsafe_word of { context : string; word : Symbol.t list }
  | Impossible_word of { context : string; word : Symbol.t list }
  | Root_mismatch of { expected : string; found : string }
  | Execution_failed of { context : string }
  | Unrewritable_output of { context : string; fname : string }
  | Ill_typed_service of { context : string; fname : string }
  | Service_failure of
      { context : string; fname : string; attempts : int; message : string }
  | Invariant_failure of { context : string; detail : string }
  | Invalid_root_forest of { width : int }

type failure = { at : Document.path; reason : reason }

let pp_word = Fmt.(list ~sep:(any ".") Symbol.pp)

let pp_reason ppf = function
  | Unknown_element l ->
    Fmt.pf ppf "element type %S is not part of the exchange schema" l
  | Unknown_function f -> Fmt.pf ppf "function %S has no known signature" f
  | Unsafe_word { context; word } ->
    Fmt.pf ppf "children of %s (%a) cannot be safely rewritten" context pp_word word
  | Impossible_word { context; word } ->
    Fmt.pf ppf "children of %s (%a) cannot possibly be rewritten" context pp_word word
  | Root_mismatch { expected; found } ->
    Fmt.pf ppf "root is <%s> but the exchange schema requires <%s>" found expected
  | Execution_failed { context } ->
    Fmt.pf ppf "a possible rewriting of the children of %s failed at run time" context
  | Unrewritable_output { context; fname } ->
    Fmt.pf ppf
      "service %s (invoked while rewriting the children of %s) returned data \
       that cannot be rewritten within the remaining depth budget"
      fname context
  | Ill_typed_service { context; fname } ->
    Fmt.pf ppf
      "service %s broke its output contract while rewriting the children of %s"
      fname context
  | Service_failure { context; fname; attempts; message } ->
    Fmt.pf ppf
      "service %s failed after %d attempt(s) while rewriting the children of \
       %s: %s"
      fname attempts context message
  | Invariant_failure { context; detail } ->
    Fmt.pf ppf "internal invariant violated at %s: %s" context detail
  | Invalid_root_forest { width } ->
    Fmt.pf ppf
      "pre-materializing the root call returned a forest of %d nodes instead \
       of a single document root"
      width

let pp_failure ppf f =
  Fmt.pf ppf "%a: %a" Document.pp_path f.at pp_reason f.reason

(* A fault is the environment's fault (service misbehaviour or an engine
   invariant breach), as opposed to a genuine rewritability verdict. *)
let reason_is_fault = function
  | Ill_typed_service _ | Service_failure _ | Invariant_failure _
  | Invalid_root_forest _ -> true
  | Unknown_element _ | Unknown_function _ | Unsafe_word _ | Impossible_word _
  | Root_mismatch _ | Execution_failed _ | Unrewritable_output _ -> false

let failure_is_fault f = reason_is_fault f.reason

type mode = Safe | Possible_mode

let root_failures t doc =
  match (Contract.target t.contract).Schema.root, (doc : Document.t) with
  | Some expected, Document.Elem { label; _ } when not (String.equal label expected) ->
    [ { at = []; reason = Root_mismatch { expected; found = label } } ]
  | Some expected, (Document.Data _ | Document.Call _) ->
    [ { at = []; reason = Root_mismatch { expected; found = "(not an element)" } } ]
  | _ -> []

(* Static check: no invocation happens; every node's children word is
   analyzed against its type. Returns the failures ([] = verdict holds). *)
let collect_failures ?k mode t (doc : Document.t) : failure list =
  let acc = ref [] in
  let push at reason = acc := { at; reason } :: !acc in
  let rec visit path (node : Document.t) =
    (match node with
     | Document.Data _ -> ()
     | Document.Elem { label; children } ->
       (match element_entry t label with
        | None -> push (List.rev path) (Unknown_element label)
        | Some (regex, dense) -> check_word path ~fn:false label regex dense children)
     | Document.Call { name; params } ->
       (match input_entry t name with
        | None -> push (List.rev path) (Unknown_function name)
        | Some (regex, dense) -> check_word path ~fn:true name regex dense params));
    List.iteri (fun i child -> visit (i :: path) child) (Document.children node)
  and check_word path ~fn name regex dense forest =
    (* already-conforming words are trivially rewritable (identity): the
       dense membership test skips the analysis cache round-trip, and
       the context string only materializes for an actual failure *)
    if not (Validate.forest_accepted dense forest) then begin
      let context = if fn then name ^ "()" else "<" ^ name ^ ">" in
      let word = Document.word forest in
      match mode with
      | Safe ->
        if not (Contract.is_safe ?k t.contract ~target_regex:regex word) then
          push (List.rev path) (Unsafe_word { context; word })
      | Possible_mode ->
        if not (Contract.is_possible ?k t.contract ~target_regex:regex word)
        then push (List.rev path) (Impossible_word { context; word })
    end
  in
  visit [] doc;
  root_failures t doc @ List.rev !acc

(* ------------------------------------------------------------------ *)
(* Materialization                                                     *)
(* ------------------------------------------------------------------ *)

type located_invocation = { at : Document.path; invocation : Execute.invocation }

exception Failed of failure

let () =
  Printexc.register_printer (function
    | Failed f -> Some (Fmt.str "Axml_core.Rewriter.Failed (%a)" pp_failure f)
    | _ -> None)

(* Materialize [doc] so that it conforms to the exchange schema,
   invoking services through [invoker]. In [Safe] mode the rewriting is
   guaranteed (exception [Failed] means the document is not safely
   rewritable; [Execute.Ill_typed_output] means a service broke its
   WSDL contract). In [Possible_mode] a run-time failure surfaces as
   [Failed { reason = Execution_failed _; _ }].

   [depth] is the remaining rewriting budget: the top of the document
   runs at the contract's k (or the caller's [?k]); every forest a
   service returns is re-enforced at [depth - 1] through [Execute]'s
   [reenforce] hook, so a round-r result must land in the target within
   the k-r rounds that remain. At depth <= 1 returned forests are
   spliced as-is (footnote 5). *)
let materialize ?(mode = Safe) ?k t ~(invoker : Execute.invoker) (doc : Document.t) :
    (Document.t * located_invocation list, failure list) result =
  let top_k = max 0 (Option.value k ~default:(Contract.k t.contract)) in
  match root_failures t doc with
  | _ :: _ as fs -> Error fs
  | [] ->
  let invocations = ref [] in
  let rec interior depth path (node : Document.t) : Document.t =
    match node with
    | Document.Data _ -> node
    | Document.Elem { label; children } ->
      (match element_entry t label with
       | None -> raise (Failed { at = List.rev path; reason = Unknown_element label })
       | Some (regex, dense) ->
         let children' = forest depth path ~fn:false label regex dense children in
         if children' == children then node else Document.elem label children')
    | Document.Call { name; params } ->
      (match input_entry t name with
       | None -> raise (Failed { at = List.rev path; reason = Unknown_function name })
       | Some (regex, dense) ->
         let params' = forest depth path ~fn:true name regex dense params in
         if params' == params then node else Document.call name params')
  (* materialize each child in place, preserving physical identity when
     nothing underneath changed so untouched subtrees are not rebuilt *)
  and interiors depth path i (children : Document.forest) : Document.forest =
    match children with
    | [] -> children
    | c :: rest ->
      let c' = interior depth (i :: path) c in
      let rest' = interiors depth path (i + 1) rest in
      if c' == c && rest' == rest then children else c' :: rest'
  and forest depth path ~fn name regex dense (children : Document.forest) :
      Document.forest =
    (* deepest-first: materialize interiors (and hence parameters of
       function children) before rewriting this children word *)
    let children = interiors depth path 0 children in
    (* fast path: a children word already in the target language needs
       no game and no walk — the keep-first executor would return it
       unchanged with zero invocations, so return it directly *)
    if Validate.forest_accepted dense children then children
    else begin
    let context = if fn then name ^ "()" else "<" ^ name ^ ">" in
    let word = Document.word children in
    let strategy =
      match mode with
      | Safe ->
        let analysis =
          Contract.safe_analysis ~k:depth t.contract ~target_regex:regex word
        in
        if not analysis.Marking.safe then
          raise (Failed { at = List.rev path; reason = Unsafe_word { context; word } });
        Execute.Follow_safe analysis
      | Possible_mode ->
        let analysis =
          Contract.possible_analysis ~k:depth t.contract ~target_regex:regex word
        in
        if not analysis.Possible.possible then
          raise
            (Failed { at = List.rev path; reason = Impossible_word { context; word } });
        Execute.Follow_possible analysis
    in
    (* The k-bounded hook: rewrite each returned node against the
       remaining budget. A non-fault [Failed] from the nested walk is
       the verdict "this result cannot be rewritten" — reported as
       [None] so the outer walk treats the option as unavailable and
       backtracks. Faults re-raise and come back as service errors. *)
    let reenforce =
      if depth <= 1 then None
      else
        Some
          (fun _fname returned ->
            match
              List.mapi (fun i d -> interior (depth - 1) (i :: path) d) returned
            with
            | enforced -> Some enforced
            | exception Failed f when not (failure_is_fault f) -> None)
    in
    match Execute.run ~validate:(output_ok t) ?reenforce strategy invoker children with
    | Ok outcome ->
      List.iter
        (fun inv ->
          invocations := { at = List.rev path; invocation = inv } :: !invocations)
        outcome.Execute.invocations;
      outcome.Execute.materialized
    | Error e ->
      let at = List.rev path in
      let reason =
        match e with
        | Execute.No_possible_path -> Execution_failed { context }
        | Execute.Ill_typed_output inv ->
          Ill_typed_service { context; fname = inv.Execute.inv_name }
        | Execute.Unrewritable_output inv ->
          Unrewritable_output { context; fname = inv.Execute.inv_name }
        | Execute.Service_error { fname; attempts; cause } ->
          Service_failure
            { context; fname; attempts; message = Printexc.to_string cause }
        | Execute.Invariant_violation detail ->
          Invariant_failure { context; detail }
      in
      raise (Failed { at; reason })
    end
  in
  match interior top_k [] doc with
  | doc' -> Ok (doc', List.rev !invocations)
  | exception Failed f -> Error [ f ]

(* ------------------------------------------------------------------ *)
(* The mixed approach (Section 5)                                      *)
(* ------------------------------------------------------------------ *)

(* Invoke up-front every call whose function satisfies [eager_calls]
   (e.g. side-effect-free or cheap services), splice the actual results,
   then run the safe analysis on what remains. The actual outputs replace
   the "full signature automaton" by concrete words, shrinking A_w^k.

   Eager calls hit real services, so their failures come back through the
   same typed channel as materialization failures instead of escaping. *)
let pre_materialize t ~eager_calls ~(invoker : Execute.invoker) doc :
    (Document.t * located_invocation list, failure) result =
  let invocations = ref [] in
  let budget = ref (max 1 (Contract.k t.contract * 64)) in
  let env = env t in
  let rec node_forest path (node : Document.t) : Document.forest =
    match node with
    | Document.Data v -> [ Document.Data v ]
    | Document.Elem { label; children } ->
      [ Document.elem label (forest path children) ]
    | Document.Call { name; params } ->
      let params = forest path params in
      if eager_calls name && Schema.is_invocable env name && !budget > 0 then begin
        decr budget;
        let returned =
          match invoker name params with
          | returned -> returned
          | exception Execute.Invocation_failed { fname; attempts; cause } ->
            raise
              (Failed
                 { at = List.rev path;
                   reason =
                     Service_failure
                       { context = name ^ "()"; fname; attempts;
                         message = Printexc.to_string cause } })
          | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
          | exception (Failed _ as reraise) -> raise reraise
          | exception cause ->
            raise
              (Failed
                 { at = List.rev path;
                   reason =
                     Service_failure
                       { context = name ^ "()"; fname = name; attempts = 1;
                         message = Printexc.to_string cause } })
        in
        invocations :=
          { at = List.rev path;
            invocation = { Execute.inv_name = name; inv_params = params;
                           inv_result = returned } }
          :: !invocations;
        forest path returned
      end
      else [ Document.call name params ]
  and forest path children =
    List.concat (List.mapi (fun i c -> node_forest (i :: path) c) children)
  in
  match node_forest [] doc with
  | [ doc' ] -> Ok (doc', List.rev !invocations)
  | forest ->
    Error { at = []; reason = Invalid_root_forest { width = List.length forest } }
  | exception Failed f -> Error f

let materialize_mixed ?k t ~eager_calls ~invoker doc =
  match pre_materialize t ~eager_calls ~invoker doc with
  | Error f -> Error [ f ]
  | Ok (doc', pre) ->
    (match materialize ~mode:Safe ?k t ~invoker doc' with
     | Ok (doc'', invs) -> Ok (doc'', pre @ invs)
     | Error fs -> Error fs)

(* ------------------------------------------------------------------ *)
(* The unified static check                                            *)
(* ------------------------------------------------------------------ *)

type check_mode =
  | Check_safe
  | Check_possible
  | Check_mixed of {
      eager_calls : string -> bool;
      invoker : Execute.invoker;
    }

type check_report = {
  ok : bool;
  failures : failure list;
  cache : Contract.stats;
}

let check_mode_name = function
  | Check_safe -> "safe"
  | Check_possible -> "possible"
  | Check_mixed _ -> "mixed"

let m_checks mode ok =
  Axml_obs.Metrics.counter
    ~help:"Document-level check reports, by mode and verdict"
    ~labels:[ ("mode", mode); ("ok", if ok then "true" else "false") ]
    "axml_rewriter_checks_total"

let m_checks_table =
  List.concat_map
    (fun mode -> List.map (fun ok -> ((mode, ok), m_checks mode ok)) [ true; false ])
    [ "safe"; "possible"; "mixed" ]

let check ?(mode = Check_safe) ?k t doc =
  let mode_name = check_mode_name mode in
  Axml_obs.Trace.with_span "rewriter.check" ~detail:(fun () -> mode_name)
  @@ fun () ->
  let before = Contract.stats t.contract in
  let failures =
    match mode with
    | Check_safe -> collect_failures ?k Safe t doc
    | Check_possible -> collect_failures ?k Possible_mode t doc
    | Check_mixed { eager_calls; invoker } ->
      (match pre_materialize t ~eager_calls ~invoker doc with
       | Ok (doc', _pre) -> collect_failures ?k Safe t doc'
       | Error f -> [ f ])
  in
  let ok = failures = [] in
  Axml_obs.Metrics.inc (List.assoc (mode_name, ok) m_checks_table);
  { ok;
    failures;
    cache = Contract.diff_stats ~before (Contract.stats t.contract) }

(* Deprecated shims over [check] (kept so existing callers build). *)
let check_safe t doc = (check ~mode:Check_safe t doc).failures
let check_possible t doc = (check ~mode:Check_possible t doc).failures

let check_mixed t ~eager_calls ~invoker doc =
  (check ~mode:(Check_mixed { eager_calls; invoker }) t doc).failures

let is_safe t doc = (check ~mode:Check_safe t doc).ok
let is_possible t doc = (check ~mode:Check_possible t doc).ok

(* ------------------------------------------------------------------ *)
(* Document-level minimal-k                                            *)
(* ------------------------------------------------------------------ *)

type doc_minimal = { safe_k : int option; possible_k : int option }

exception Hopeless

(* The static safe-at-k verdict requires *every* children word safe at
   k, so the document's minimum is the max over its words' minima
   (monotonicity makes the per-word minima well-defined). Unknown
   labels/functions and a root mismatch can never become rewritable at
   any depth, so they answer None/None. Every per-word query goes
   through the k-keyed analysis cache. *)
let minimal_k ?max_k t (doc : Document.t) =
  if root_failures t doc <> [] then { safe_k = None; possible_k = None }
  else begin
    let safe_k = ref (Some 0) and possible_k = ref (Some 0) in
    let join cell v =
      match (!cell, v) with
      | Some a, Some b -> cell := Some (max a b)
      | (None | Some _), None -> cell := None
      | None, Some _ -> ()
    in
    let rec visit (node : Document.t) =
      (match node with
       | Document.Data _ -> ()
       | Document.Elem { label; children } ->
         (match element_regex t label with
          | None -> raise Hopeless
          | Some regex -> word regex children)
       | Document.Call { name; params } ->
         (match input_regex t name with
          | None -> raise Hopeless
          | Some regex -> word regex params));
      List.iter visit (Document.children node)
    and word regex forest =
      let m =
        Contract.minimal_k ?max_k t.contract ~target_regex:regex
          (Document.word forest)
      in
      join safe_k m.Contract.safe_at;
      join possible_k m.Contract.possible_at;
      if !safe_k = None && !possible_k = None then raise Hopeless
    in
    match visit doc with
    | () -> { safe_k = !safe_k; possible_k = !possible_k }
    | exception Hopeless -> { safe_k = None; possible_k = None }
  end
