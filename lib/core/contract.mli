(** A compiled exchange contract: every schema-derived artifact needed
    to enforce a fixed [(s0, target, k, engine)] quadruple, compiled
    once and reused across documents.

    The Schema Enforcement module sits on a peer's communication path
    (Section 7): the same pair of schemas is enforced against a whole
    stream of documents. All the static-analysis machinery — the merged
    environment, the compiled content-model regexes, the Glushkov
    automata and the marking/reachability analyses of Figures 3 and 9 —
    depends only on the contract and the children {e word} under
    analysis, never on the rest of the document. A contract therefore
    memoizes analyses by [(content model, word)]: the second document
    whose <newspaper> children form [title.date.Get_Temp.TimeOut] gets
    its verdict (and its extracted strategy) by hash lookup instead of
    replaying the game.

    The cache is bounded ([cache_capacity], FIFO eviction) and counts
    hits, misses and evictions so callers can observe the amortization
    ({!stats}). {!Rewriter} is a thin view over this module;
    [Axml_peer.Enforcement.Pipeline] drives it over document streams. *)

type engine =
  | Eager  (** the literal algorithm of Figure 3 *)
  | Lazy   (** the pruned on-the-fly variant of Section 7 *)

type t

val create :
  ?k:int -> ?engine:engine -> ?predicate:(string -> string -> bool) ->
  ?cache_capacity:int ->
  s0:Axml_schema.Schema.t -> target:Axml_schema.Schema.t -> unit -> t
(** Compile the contract for exchanging documents of [s0] under the
    agreed [target] schema. [k] is the rewriting depth (Definition 7,
    default 1); [predicate] answers function-pattern predicates;
    [cache_capacity] bounds the analysis memo table (default 4096
    entries, clamped to at least 1).
    @raise Axml_schema.Schema.Schema_error when [s0] and [target]
    disagree on a common function signature. *)

(** {1 Static artifacts} *)

val env : t -> Axml_schema.Schema.env
val s0 : t -> Axml_schema.Schema.t
val target : t -> Axml_schema.Schema.t
val k : t -> int
val engine : t -> engine

val element_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled content model of a label in the {e target} schema
    (compiled once per contract). *)

val input_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled input type of a function, from the merged environment. *)

(** {1 Analysis contexts}

    The position of a children word inside a document decides which
    content model it is analyzed against. *)

type context =
  | Element of string  (** children of an element, against its target content model *)
  | Input of string    (** parameters of a call, against the function's input type *)

val pp_context : context Fmt.t

exception Unknown_context of context
(** The label is not declared by the target schema / the function has no
    known signature. *)

val context_regex :
  t -> context -> Axml_schema.Symbol.t Axml_regex.Regex.t option

(** {1 Cached analyses}

    Keyed by [(content-model regex, word)]: two contexts sharing a
    content model share their analyses. The returned analyses carry the
    winning strategy; they are safe to hand to {!Execute.run} (the
    underlying product is extended on demand, never invalidated). *)

val product :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Product.t
(** A fresh (uncached) product of A_w^k with the target automaton. *)

val safe_analysis :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Marking.t
(** The marking game of Figure 3 for [word] against [target_regex],
    memoized. *)

val possible_analysis :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Possible.t
(** The reachability analysis of Figure 9, memoized. *)

val is_safe :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool

val is_possible :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool

(** {1 Verdicts} *)

type verdict =
  | Safe           (** a safe rewriting exists (Figure 3) *)
  | Possible_only  (** no safe rewriting, but a possible one (Figure 9) *)
  | Impossible     (** no rewriting at all *)

val pp_verdict : verdict Fmt.t

val analyze : t -> context:context -> Axml_schema.Symbol.t list -> verdict
(** One-stop entry point: analyze a children word in its context.
    @raise Unknown_context when the context is not part of the
    contract. *)

(** {1 Cache accounting} *)

type stats = {
  hits : int;       (** analyses answered from the memo table *)
  misses : int;     (** analyses actually computed *)
  evictions : int;  (** entries dropped to respect [cache_capacity] *)
  entries : int;    (** entries currently resident *)
}

val stats : t -> stats
val hit_rate : stats -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val diff_stats : before:stats -> stats -> stats
(** Counter deltas ([entries] is the later absolute value): the cache
    activity between two {!stats} snapshots. *)

val pp_stats : stats Fmt.t

val reset_stats : t -> unit
(** Zero the counters; cached analyses stay resident. *)

val clear : t -> unit
(** Drop every cached analysis (compiled regexes stay); counters are
    reset too. *)
