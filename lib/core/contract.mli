(** A compiled exchange contract: every schema-derived artifact needed
    to enforce a fixed [(s0, target, k, engine)] quadruple, compiled
    once and reused across documents.

    The Schema Enforcement module sits on a peer's communication path
    (Section 7): the same pair of schemas is enforced against a whole
    stream of documents. All the static-analysis machinery — the merged
    environment, the compiled content-model regexes, the Glushkov
    automata and the marking/reachability analyses of Figures 3 and 9 —
    depends only on the contract and the children {e word} under
    analysis, never on the rest of the document. A contract therefore
    memoizes analyses by [(content model, word)]: the second document
    whose <newspaper> children form [title.date.Get_Temp.TimeOut] gets
    its verdict (and its extracted strategy) by hash lookup instead of
    replaying the game.

    The cache is bounded ([cache_capacity], FIFO eviction) and counts
    hits, misses and evictions so callers can observe the amortization
    ({!stats}). {!Rewriter} is a thin view over this module;
    [Axml_peer.Enforcement.Pipeline] drives it over document streams.

    {b Domain safety.} All mutable contract state (regex memo tables,
    the analysis cache, the counters) is guarded by an internal mutex,
    so {!analyze}, {!stats} etc. may be called from several domains
    concurrently, and each [(word, kind)] analysis is computed at most
    once. The {e returned} analyses, however, carry products that are
    extended in place during {!Execute.run} — executing one analysis
    from several domains at once is a race. Parallel pipelines give
    each worker domain a private {!clone} instead. *)

type engine =
  | Eager  (** the literal algorithm of Figure 3 *)
  | Lazy   (** the pruned on-the-fly variant of Section 7 *)

type t

val create :
  ?k:int -> ?engine:engine -> ?predicate:(string -> string -> bool) ->
  ?cache_capacity:int ->
  s0:Axml_schema.Schema.t -> target:Axml_schema.Schema.t -> unit -> t
(** Compile the contract for exchanging documents of [s0] under the
    agreed [target] schema. [k] is the rewriting depth (Definition 7,
    default 1); [predicate] answers function-pattern predicates;
    [cache_capacity] bounds the analysis memo table (default 4096
    entries, clamped to at least 1).
    @raise Axml_schema.Schema.Schema_error when [s0] and [target]
    disagree on a common function signature. *)

val clone : t -> t
(** A private contract over the same compiled artifacts: shares the
    (immutable) merged environment, schemas, [k], [engine] and
    capacity; copies the compiled-regex memo tables; starts with an
    empty analysis cache and zeroed counters. This is how parallel
    pipelines give each worker domain its own analyses without
    recompiling the schemas — see DESIGN.md. *)

(** {1 Static artifacts} *)

val env : t -> Axml_schema.Schema.env
(** The merged function environment of [s0] and [target] the contract
    was compiled against. *)

val s0 : t -> Axml_schema.Schema.t
(** The sender schema documents are assumed to conform to. *)

val target : t -> Axml_schema.Schema.t
(** The agreed exchange schema rewritings must land in. *)

val k : t -> int
(** The rewriting depth bound (Definition 7). *)

val engine : t -> engine
(** Which safe-rewriting engine ({!Eager} or {!Lazy}) uncached
    analyses run on. *)

val element_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled content model of a label in the {e target} schema
    (compiled once per contract). *)

val input_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled input type of a function, from the merged environment. *)

(** {1 Analysis contexts}

    The position of a children word inside a document decides which
    content model it is analyzed against. *)

type context =
  | Element of string  (** children of an element, against its target content model *)
  | Input of string    (** parameters of a call, against the function's input type *)

val pp_context : context Fmt.t
(** Renders [<l>] for elements, [f()] for function inputs. *)

exception Unknown_context of context
(** The label is not declared by the target schema / the function has no
    known signature. *)

val context_regex :
  t -> context -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** The compiled content model a word in [context] is analyzed
    against: {!element_regex} for [Element], {!input_regex} for
    [Input]. [None] when the target schema / environment does not
    declare it. *)

(** {1 Cached analyses}

    Keyed by [(content-model regex, word, k)]: two contexts sharing a
    content model share their analyses, and verdicts computed at
    different rewriting depths never alias. Every analysis entry point
    takes an optional [?k] overriding the contract's configured depth
    for that one query (used by the depth-threading rewriter and by
    {!minimal_k}); omitted, the contract's [k] applies. The returned
    analyses carry the winning strategy; they are safe to hand to
    {!Execute.run} (the underlying product is extended on demand,
    never invalidated). *)

val product :
  ?k:int -> t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Product.t
(** A fresh (uncached) product of A_w^k with the target automaton. *)

val safe_analysis :
  ?k:int -> t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Marking.t
(** The marking game of Figure 3 for [word] against [target_regex],
    memoized. *)

val possible_analysis :
  ?k:int -> t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Possible.t
(** The reachability analysis of Figure 9, memoized. *)

val is_safe :
  ?k:int -> t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool
(** [is_safe c ~target_regex w]: does a safe rewriting of [w] into the
    target language exist? The verdict of {!safe_analysis}, cached
    alike. *)

val is_possible :
  ?k:int -> t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool
(** [is_possible c ~target_regex w]: can {e some} run of a rewriting
    of [w] land in the target language? The verdict of
    {!possible_analysis}, cached alike. *)

val children_accepted :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Document.forest -> bool
(** [children_accepted c ~target_regex children]: is the children word
    already in the target language as it stands? Stepped through
    compiled dense tables (memoized per content model), allocating
    nothing. Acceptance implies the word is safely and possibly
    rewritable at every depth — the identity rewriting wins — so hot
    paths use this to skip the game analyses for conforming words. *)

(** {1 Verdicts} *)

type verdict =
  | Safe           (** a safe rewriting exists (Figure 3) *)
  | Possible_only  (** no safe rewriting, but a possible one (Figure 9) *)
  | Impossible     (** no rewriting at all *)

val pp_verdict : verdict Fmt.t
(** Renders [safe] / [possible (not safe)] / [impossible]. *)

val analyze :
  ?k:int -> t -> context:context -> Axml_schema.Symbol.t list -> verdict
(** One-stop entry point: analyze a children word in its context at
    depth [?k] (the contract's configured depth when omitted).
    @raise Unknown_context when the context is not part of the
    contract. *)

(** {1 Minimal-k search} *)

type minimal = {
  safe_at : int option;
      (** smallest depth at which the word is safe; [None] if not safe
          even at the search bound *)
  possible_at : int option;
      (** smallest depth at which the word is possible; [None] if not
          possible even at the search bound *)
}

val minimal_k :
  ?max_k:int -> t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> minimal
(** The smallest rewriting depth at which [word] becomes safe
    (resp. possible), searched linearly from [k = 0] up to [max_k]
    (default: the contract's configured depth). Soundness of the
    linear search rests on monotonicity: the player's options only
    grow with k while the adversary's are fixed, so a word safe at k
    is safe at every k' ≥ k (possibility likewise — qcheck-verified in
    the test suite). [safe_at = Some 0] means the word already
    conforms without any materialization; every answer is served
    through the (k-keyed) analysis cache, so the search piggybacks on
    enforcement's own queries. *)

(** {1 Cache accounting} *)

type stats = {
  hits : int;       (** analyses answered from the memo table *)
  misses : int;     (** analyses actually computed *)
  evictions : int;  (** entries dropped to respect [cache_capacity] *)
  entries : int;    (** entries currently resident *)
}

val stats : t -> stats
(** A snapshot of this contract's cache counters since creation (or
    the last {!reset_stats}). The process-wide aggregates live in the
    [Axml_obs] metrics registry. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val diff_stats : before:stats -> stats -> stats
(** Counter deltas ([entries] is the later absolute value): the cache
    activity between two {!stats} snapshots. *)

val add_stats : stats -> stats -> stats
(** Field-wise sum — merges the windows of a shared contract and its
    {!clone}s into one batch-level view. *)

val pp_stats : stats Fmt.t

val reset_stats : t -> unit
(** Zero the counters; cached analyses stay resident. *)

val clear : t -> unit
(** Drop every cached analysis (compiled regexes stay); counters are
    reset too. *)
