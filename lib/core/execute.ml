(* Executing a word-level rewriting against real services (steps 19-23 of
   Figure 3 and steps 7-10 of Figure 9).

   The materializer walks the concrete children forest left-to-right
   while tracking the corresponding product node. At every function
   occurrence the strategy decides between the two fork options:
     - SAFE mode follows only unmarked nodes; the game guarantees the
       walk cannot get stuck, whatever the services return;
     - POSSIBLE mode follows only live nodes and *backtracks* when a
       call's actual return value leaves every live path (Figure 9c).
   A call is invoked at most once per occurrence: its result is cached,
   so backtracking re-examines recorded outputs rather than re-firing
   side effects. Invocations are reported in chronological order.

   Failure is a value, not an exception: the engine sits on a live
   exchange path where services time out, crash and break their WSDL
   contracts, so [run] returns a typed report instead of escaping. A
   service exception marks that fork option as unavailable (the walk
   still backtracks to sibling options — a safe verdict guarantees every
   remaining good path); if no path survives, the first service error is
   reported. A failed SAFE walk identifies the contract-breaking
   invocation by re-validating every cached result against its declared
   output type, rather than blaming an arbitrary one. *)

module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

let m_invocation result =
  Metrics.counter ~help:"Service invocations fired by the materializer"
    ~labels:[ ("status", result) ]
    "axml_execute_invocations_total"

let m_invoke_ok = m_invocation "ok"
let m_invoke_error = m_invocation "error"

let m_fork choice =
  Metrics.counter
    ~help:"Fork options attempted at invoke/keep choice points"
    ~labels:[ ("choice", choice) ]
    "axml_execute_fork_choices_total"

let m_fork_keep = m_fork "keep"
let m_fork_invoke = m_fork "invoke"

let m_runs outcome =
  Metrics.counter ~help:"Materialization walks, by result"
    ~labels:[ ("outcome", outcome) ]
    "axml_execute_runs_total"

let m_runs_ok = m_runs "ok"
let m_runs_failed = m_runs "failed"

let m_reenforce result =
  Metrics.counter
    ~help:"Returned forests re-enforced against the remaining depth budget"
    ~labels:[ ("result", result) ]
    "axml_execute_reenforcements_total"

let m_reenforce_ok = m_reenforce "ok"
let m_reenforce_refused = m_reenforce "refused"

type invoker = string -> Document.forest -> Document.forest

exception Invocation_failed of { fname : string; attempts : int; cause : exn }

type invocation = {
  inv_name : string;
  inv_params : Document.forest;
  inv_result : Document.forest;
}

type strategy =
  | Follow_safe of Marking.t
  | Follow_possible of Possible.t

type failure =
  | Ill_typed_output of invocation
  | Unrewritable_output of invocation
  | Service_error of { fname : string; attempts : int; cause : exn }
  | No_possible_path
  | Invariant_violation of string

let pp_failure ppf = function
  | Ill_typed_output inv ->
    Fmt.pf ppf "service %s returned a value outside its declared output type"
      inv.inv_name
  | Unrewritable_output inv ->
    Fmt.pf ppf
      "service %s returned a value that cannot be rewritten into the target \
       within the remaining depth budget"
      inv.inv_name
  | Service_error { fname; attempts; cause } ->
    Fmt.pf ppf "service %s failed after %d attempt(s): %s" fname attempts
      (Printexc.to_string cause)
  | No_possible_path ->
    Fmt.string ppf "every possible rewriting path died on the actual answers"
  | Invariant_violation msg -> Fmt.pf ppf "internal invariant violated: %s" msg

type outcome = {
  materialized : Document.forest;
  invocations : invocation list;
}

let product_of = function
  | Follow_safe m -> m.Marking.product
  | Follow_possible pos -> pos.Possible.product

let good_of = function
  | Follow_safe m -> fun nid -> not (Marking.is_marked m nid)
  | Follow_possible pos -> fun nid -> Possible.is_live pos nid

(* [run strategy invoker items] materializes the forest [items].

   [plan] optionally estimates, per product node, the remaining
   invocation fees (e.g. [Cost.possible_costs]); when given, the
   alternatives at each choice point are tried cheapest-estimate first
   instead of the default keep-first order — the cost minimization of
   Figure 3 step 23 / Figure 9 step d. [fee] prices an invoke option's
   immediate cost (default free).

   [validate fname forest] decides whether [forest] is an output
   instance of [fname]'s declared type; it is only consulted post
   mortem, to identify the offending invocation of a failed SAFE walk.

   [reenforce fname returned] rewrites a service's raw return value
   against the remaining depth budget (the k-bounded game needs results
   of round-r invocations to themselves land in the target within k-r
   further rounds). [Some enforced] replaces the raw forest in the
   walk; [None] means the result cannot be rewritten — the fork option
   is treated as unavailable and the walk backtracks, exactly like a
   downed service. Without [reenforce] results are spliced as returned
   (the paper's footnote-5 behaviour, correct only at k = 1). *)
let run ?plan ?(fee = fun _ -> 0.) ?validate ?reenforce strategy invoker
    (items : Document.forest) : (outcome, failure) result =
  let p = product_of strategy in
  let good = good_of strategy in
  let fork = Product.fork p in
  let invocations = ref [] in
  let service_error = ref None in
  let reenforce_refused = ref None in
  let cache : (int, ((int * Document.t) list, unit) result) Hashtbl.t =
    Hashtbl.create 8
  in
  let counter = ref 0 in
  let wrap forest =
    List.map (fun d -> incr counter; (!counter, d)) forest
  in
  let step nid eid =
    let succs = Product.succ p nid in
    let n = Array.length succs in
    let rec find i =
      if i >= n then assert false
      else
        let e, tgt = succs.(i) in
        if e = eid then tgt else find (i + 1)
    in
    find 0
  in
  let record_error fname attempts cause =
    if !service_error = None then
      service_error := Some (Service_error { fname; attempts; cause })
  in
  let invoke_once id fname params =
    match Hashtbl.find_opt cache id with
    | Some r -> r
    | None ->
      let r =
        match invoker fname params with
        | returned -> (
          invocations :=
            { inv_name = fname; inv_params = params; inv_result = returned }
            :: !invocations;
          Metrics.inc m_invoke_ok;
          if Trace.enabled Trace.default then
            Trace.emit (Invocation { fname; attempts = 0; ok = true });
          match reenforce with
          | None -> Ok (wrap returned)
          | Some re -> (
            (* The raw invocation is already recorded above — the
               re-enforcement verdict only decides whether this fork
               option stays on the table. *)
            match re fname returned with
            | Some enforced ->
              Metrics.inc m_reenforce_ok;
              Ok (wrap enforced)
            | None ->
              Metrics.inc m_reenforce_refused;
              if !reenforce_refused = None then
                reenforce_refused :=
                  Some
                    (Unrewritable_output
                       { inv_name = fname; inv_params = params;
                         inv_result = returned });
              Error ()
            | exception ((Stack_overflow | Out_of_memory) as fatal) ->
              raise fatal
            | exception cause ->
              (* A genuine fault inside nested materialization: classify
                 like any service failure so blame lands on a service,
                 not on the verdict. *)
              record_error fname 1 cause;
              Metrics.inc m_invoke_error;
              Error ()))
        | exception Invocation_failed { fname; attempts; cause } ->
          record_error fname attempts cause;
          Metrics.inc m_invoke_error;
          if Trace.enabled Trace.default then
            Trace.emit (Invocation { fname; attempts; ok = false });
          Error ()
        | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
        | exception cause ->
          record_error fname 1 cause;
          Metrics.inc m_invoke_error;
          if Trace.enabled Trace.default then
            Trace.emit (Invocation { fname; attempts = 1; ok = false });
          Error ()
      in
      Hashtbl.add cache id r;
      r
  in
  (* [process items nid stop k]: consume [items] from product node [nid];
     when exhausted, require [stop q] and call [k emitted nid_end].
     Returns true as soon as one alternative succeeds. *)
  let rec process items nid stop k =
    match items with
    | [] -> stop (Product.node p nid).Product.q && k [] nid
    | (id, item) :: rest ->
      let sym = Document.symbol item in
      let q = (Product.node p nid).Product.q in
      let edges = Fork_automaton.out_edges fork q in
      (* 1. keep moves: follow an edge labeled with this symbol *)
      let keep_moves =
        List.filter
          (fun eid ->
            match (Fork_automaton.edge fork eid).Fork_automaton.label with
            | Some s -> Symbol.equal s sym
            | None -> false)
          edges
      in
      (* 2. invoke moves: only for function occurrences with a fork here *)
      let invoke_moves =
        match sym with
        | Symbol.Fun _ ->
          List.filter_map
            (fun eid ->
              match Fork_automaton.fork_of_edge fork eid with
              | Some f when eid = f.Fork_automaton.keep_edge -> Some f
              | Some _ | None -> None)
            keep_moves
        | Symbol.Label _ | Symbol.Data -> []
      in
      (* fork-choice accounting only where a genuine choice exists *)
      let at_fork = invoke_moves <> [] in
      let try_keep eid =
        if at_fork then begin
          Metrics.inc m_fork_keep;
          if Trace.enabled Trace.default then
            let fname =
              match sym with Symbol.Fun f -> f | _ -> Symbol.to_string sym
            in
            Trace.emit (Fork_choice { fname; choice = "keep" })
        end;
        let tgt = step nid eid in
        good tgt
        && process rest tgt stop (fun emitted nid' -> k (item :: emitted) nid')
      in
      let try_invoke (f : Fork_automaton.fork) =
        Metrics.inc m_fork_invoke;
        if Trace.enabled Trace.default then
          Trace.emit
            (Fork_choice { fname = f.Fork_automaton.fname; choice = "invoke" });
        let invoke_tgt = step nid f.Fork_automaton.invoke_edge in
        good invoke_tgt
        && begin
          let params = Document.children item in
          match invoke_once id f.Fork_automaton.fname params with
          | Error () -> false  (* the service is down: this option is out *)
          | Ok wrapped ->
            let in_copy q = Auto.Int_set.mem q f.Fork_automaton.copy_finals in
            process wrapped invoke_tgt in_copy (fun inner nid_end ->
                let q_end = (Product.node p nid_end).Product.q in
                match Fork_automaton.exit_edge fork f q_end with
                | None -> false
                | Some exit_eid ->
                  let exit_tgt = step nid_end exit_eid in
                  good exit_tgt
                  && process rest exit_tgt stop (fun emitted nid' ->
                         k (inner @ emitted) nid'))
        end
      in
      (match plan with
       | None ->
         (* default greedy order: prefer not invoking — fewer side
            effects, and free *)
         List.exists try_keep keep_moves
         || List.exists try_invoke invoke_moves
       | Some estimate ->
         (* cost-guided order: cheapest estimated remainder first *)
         let candidates =
           List.map
             (fun eid -> (estimate (step nid eid), `Keep eid))
             keep_moves
           @ List.map
               (fun (f : Fork_automaton.fork) ->
                 ( fee f.Fork_automaton.fname
                   +. estimate (step nid f.Fork_automaton.invoke_edge),
                   `Invoke f ))
               invoke_moves
         in
         let ordered =
           List.sort (fun (c1, _) (c2, _) -> Float.compare c1 c2) candidates
         in
         List.exists
           (fun (_, move) ->
             match move with
             | `Keep eid -> try_keep eid
             | `Invoke f -> try_invoke f)
           ordered)
  in
  let result = ref None in
  let top_stop q = q = fork.Fork_automaton.final in
  let initial = Product.initial p in
  let ok =
    good initial
    && process (wrap items) initial top_stop (fun emitted nid ->
           if Product.good_accepting p nid then begin
             result := Some emitted;
             true
           end
           else false)
  in
  if ok then begin
    Metrics.inc m_runs_ok;
    match !result with
    | Some materialized -> Ok { materialized; invocations = List.rev !invocations }
    | None -> Error (Invariant_violation "walk accepted without a result")
  end
  else begin
    Metrics.inc m_runs_failed;
    Error
      (match !service_error with
       | Some f -> f  (* no surviving path once the broken calls are out *)
       | None ->
         match !reenforce_refused with
         | Some f -> f  (* a result no remaining budget could rewrite *)
         | None ->
         match strategy with
         | Follow_possible _ -> No_possible_path
         | Follow_safe _ ->
           (* A safe verdict cannot fail unless a service broke its
              contract: find the offending invocation by re-validating
              every cached result against its declared output type. *)
           let chronological = List.rev !invocations in
           (match validate with
            | Some valid ->
              (match
                 List.find_opt
                   (fun inv -> not (valid inv.inv_name inv.inv_result))
                   chronological
               with
               | Some inv -> Ill_typed_output inv
               | None ->
                 Invariant_violation
                   (Fmt.str
                      "safe walk failed although all %d recorded output(s) \
                       validate against their declared types"
                      (List.length chronological)))
            | None ->
              (* no validator: word-level blame — the walk stopped at the
                 most recent invocation *)
              (match !invocations with
               | inv :: _ -> Ill_typed_output inv
               | [] ->
                 Invariant_violation
                   "safe walk failed before any service was invoked")))
  end
