(** The automaton A_w^k of Figure 3 (lines 5-10): a finite
    representation of every word derivable from the children word [w] by
    a k-depth left-to-right rewriting.

    Construction: start from the linear automaton accepting [w]; for [k]
    rounds, around every untreated edge labeled with an invocable
    function [f], splice a fresh copy of the Glushkov automaton of
    [tau_out f], linked by epsilon moves. The edge's source becomes a
    {e fork node}: keeping the function edge means "do not invoke f
    here"; the epsilon edge into the copy means "invoke f, and the
    adversary (the service) picks a word of its output type". *)

type edge = { src : int; label : Axml_schema.Symbol.t option; dst : int }
(** [label = None] is an epsilon move. *)

type fork = {
  fork_node : int;
  fname : string;
  keep_edge : int;    (** the function-labeled edge ("do not invoke") *)
  invoke_edge : int;  (** the epsilon edge into the copy ("invoke") *)
  copy_finals : Axml_schema.Auto.Int_set.t;
    (** absolute ids of the copy's accepting states *)
  exit_node : int;    (** the node the copy exits to *)
  round : int;        (** 1-based round (rewriting depth) of the copy *)
}

type t = {
  nstates : int;
  start : int;
  final : int;
  edges : edge array;
  out : int list array;
  out_off : int array;
    (** CSR offsets: node [q]'s edge ids are
        [out_edge.(out_off.(q) .. out_off.(q+1) - 1)], in [out] order *)
  out_edge : int array;
  edge_dst : int array;       (** edge id -> destination node *)
  edge_label_id : int array;  (** edge id -> dense symbol id, [-1] = epsilon *)
  forks : fork array;
  forks_at : int list array;
  fork_of_edge : int array;  (** edge id -> fork index, or -1 *)
  word_length : int;
}

type stats = { states : int; edges : int; forks : int }

val build : env:Axml_schema.Schema.env -> k:int -> Axml_schema.Symbol.t list -> t
(** Output types come from [env] (the merged sender + exchange schemas).
    Non-invocable functions, unknown functions and empty output
    languages never fork. *)

val stats : t -> stats
val out_edges : t -> int -> int list
val edge : t -> int -> edge
val fork_of_edge : t -> int -> fork option
val exit_edge : t -> fork -> int -> int option
(** The exit epsilon-edge of a fork's copy leaving a given copy-final. *)

val pp : t Fmt.t
