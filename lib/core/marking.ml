(* The marking game of Figure 3 (steps 15-18), deciding SAFE rewriting.

   A product node is *marked* ("bad") when the adversary — the services,
   which choose actual output words — can force the completed word out of
   the target language no matter which invoke/keep choices the rewriter
   makes:
     - a node where the word is complete but not in the language is
       marked (the accepting states of A_w^k x complement(R));
     - a non-fork successor marked => the node is marked (the adversary
       picks the letter);
     - a fork whose BOTH options are marked => the node is marked (the
       rewriter has no good choice left).
   A safe rewriting exists iff the initial node is unmarked; the
   rewriter's strategy is "always move to an unmarked node".

   Two exploration policies build the same fixpoint:
     - [analyze_eager]: materialize every reachable product node first,
       then propagate marks — the literal algorithm of Figure 3;
     - [analyze_lazy]: the optimized variant of Section 7 (Figure 12) —
       construct on demand, mark complement-sink nodes immediately
       (empty subsets), never expand nodes already known marked, and stop
       as soon as the initial node is marked. *)

(* Game kinds are packed into ints (tag in the low two bits, pair id
   above) so a reverse edge costs two int-vector slots instead of a
   list cell and a boxed constructor:
     0                 — Plain (adversary edge)
     (pid lsl 2) lor 1 — Keep half of fork pair pid ("do not invoke")
     (pid lsl 2) lor 2 — Invoke half of fork pair pid *)
let k_plain = 0
let k_keep pid = (pid lsl 2) lor 1
let k_invoke pid = (pid lsl 2) lor 2

type stats = {
  explored_nodes : int;         (* product nodes whose successors were computed *)
  discovered_nodes : int;       (* product nodes created *)
  marked_nodes : int;
  pruned : int;                 (* nodes never expanded thanks to pruning *)
}

type t = {
  product : Product.t;
  marked : Bitvec.t;
  safe : bool;
  stats : stats;
}

let is_marked t nid = Bitvec.get t.marked nid

(* The reverse product graph and the fork pairs live in flat parallel
   int vectors and bit vectors (array-of-struct -> struct-of-arrays):
   reverse edge j is (rev_pred.(j), rev_kind.(j)), and rev_next.(j)
   chains to the next edge of the same target, headed by rev_head. The
   propagation loop therefore touches only int arrays and bytes — no
   per-edge or per-pair heap blocks. *)
type builder = {
  p : Product.t;
  marks : Bitvec.t;
  rev_head : int Vec.t;    (* node id -> newest incoming edge, -1 = none *)
  rev_next : int Vec.t;
  rev_pred : int Vec.t;
  rev_kind : int Vec.t;    (* packed game kind, see [k_plain] etc. *)
  pair_owner : int Vec.t;  (* pair id -> owning (fork) node *)
  pair_keep : Bitvec.t;    (* keep half marked? *)
  pair_invoke : Bitvec.t;  (* invoke half marked? *)
  pair_ids : (int, int) Hashtbl.t;  (* node * nforks + fork id -> pair id *)
  nforks : int;
  work : int Queue.t;      (* freshly marked nodes to propagate *)
  mutable nmarked : int;
}

let new_builder p = {
  p;
  marks = Bitvec.create ();
  rev_head = Vec.create ~dummy:(-1);
  rev_next = Vec.create ~dummy:(-1);
  rev_pred = Vec.create ~dummy:(-1);
  rev_kind = Vec.create ~dummy:0;
  pair_owner = Vec.create ~dummy:(-1);
  pair_keep = Bitvec.create ();
  pair_invoke = Bitvec.create ();
  pair_ids = Hashtbl.create 64;
  nforks = Array.length (Product.fork p).Fork_automaton.forks;
  work = Queue.create ();
  nmarked = 0;
}

let rec mark b nid =
  if not (Bitvec.get b.marks nid) then begin
    Bitvec.set b.marks nid;
    b.nmarked <- b.nmarked + 1;
    Queue.add nid b.work;
    drain b
  end

(* Apply the game rule for one incoming edge of a marked node. *)
and apply_rule b pred kind =
  match kind land 3 with
  | 0 -> mark b pred
  | 1 ->
    let pid = kind lsr 2 in
    if not (Bitvec.get b.pair_keep pid) then begin
      Bitvec.set b.pair_keep pid;
      if Bitvec.get b.pair_invoke pid then mark b (Vec.get b.pair_owner pid)
    end
  | _ ->
    let pid = kind lsr 2 in
    if not (Bitvec.get b.pair_invoke pid) then begin
      Bitvec.set b.pair_invoke pid;
      if Bitvec.get b.pair_keep pid then mark b (Vec.get b.pair_owner pid)
    end

and drain b =
  while not (Queue.is_empty b.work) do
    let nid = Queue.take b.work in
    if nid < Vec.length b.rev_head then begin
      let j = ref (Vec.get b.rev_head nid) in
      while !j >= 0 do
        apply_rule b (Vec.get b.rev_pred !j) (Vec.get b.rev_kind !j);
        j := Vec.get b.rev_next !j
      done
    end
  done

(* Register the product edge [pred --kind--> tgt]; if the target is
   already marked the rule fires immediately. *)
let register_edge b pred kind tgt =
  Vec.ensure b.rev_head (tgt + 1);
  let j = Vec.push b.rev_pred pred in
  ignore (Vec.push b.rev_kind kind);
  ignore (Vec.push b.rev_next (Vec.get b.rev_head tgt));
  Vec.set b.rev_head tgt j;
  if Bitvec.get b.marks tgt then apply_rule b pred kind

let pair_id b nid fid =
  let key = (nid * b.nforks) + fid in
  match Hashtbl.find_opt b.pair_ids key with
  | Some pid -> pid
  | None ->
    let pid = Vec.push b.pair_owner nid in
    Hashtbl.add b.pair_ids key pid;
    pid

(* Expand one node: compute successors and register reverse edges with
   their game kinds. *)
let expand b nid =
  let fork = Product.fork b.p in
  Array.iter
    (fun (eid, tgt) ->
      let fid = fork.Fork_automaton.fork_of_edge.(eid) in
      let kind =
        if fid < 0 then k_plain
        else begin
          let pid = pair_id b nid fid in
          if eid = fork.Fork_automaton.forks.(fid).Fork_automaton.keep_edge
          then k_keep pid
          else k_invoke pid
        end
      in
      register_edge b nid kind tgt)
    (Product.succ b.p nid)

let finish b ~explored ~pruned =
  let discovered = Product.node_count b.p in
  { product = b.p;
    marked = b.marks;
    safe = not (Bitvec.get b.marks (Product.initial b.p));
    stats = { explored_nodes = explored; discovered_nodes = discovered;
              marked_nodes = b.nmarked; pruned } }

(* ------------------------------------------------------------------ *)
(* Eager: Figure 3 verbatim                                            *)
(* ------------------------------------------------------------------ *)

let analyze_eager p =
  let b = new_builder p in
  let seen = Bitvec.create () in
  let frontier = Queue.create () in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      if Product.bad_accepting p nid then mark b nid;
      Queue.add nid frontier
    end
  in
  discover (Product.initial p);
  let explored = ref 0 in
  while not (Queue.is_empty frontier) do
    let nid = Queue.take frontier in
    incr explored;
    expand b nid;
    Array.iter (fun (_, tgt) -> discover tgt) (Product.succ p nid)
  done;
  finish b ~explored:!explored ~pruned:0

(* ------------------------------------------------------------------ *)
(* Lazy: Section 7's pruned construction                               *)
(* ------------------------------------------------------------------ *)

let analyze_lazy p =
  let b = new_builder p in
  let seen = Bitvec.create () in
  let frontier = Queue.create () in
  let initial = Product.initial p in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      (* sink rule: an empty subset is the complement's accepting sink —
         mark immediately, and never expand (pruning idea 1) *)
      if Product.subset_is_dead p nid then mark b nid
      else if Product.bad_accepting p nid then mark b nid;
      Queue.add nid frontier
    end
  in
  discover initial;
  let explored = ref 0 in
  let pruned = ref 0 in
  (try
     while not (Queue.is_empty frontier) do
       if Bitvec.get b.marks initial then raise Exit;
       let nid = Queue.take frontier in
       if Bitvec.get b.marks nid then
         (* pruning idea 2: no point exploring beyond a marked node *)
         incr pruned
       else begin
         incr explored;
         expand b nid;
         Array.iter (fun (_, tgt) -> discover tgt) (Product.succ p nid)
       end
     done
   with Exit -> ());
  finish b ~explored:!explored ~pruned:!pruned
