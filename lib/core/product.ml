(* The cartesian product of A_w^k with the target language automaton,
   built on the fly.

   Instead of materializing the complete deterministic complement of the
   target schema (Figure 3, step c), the right-hand component is the
   *subset* of target-NFA states reached so far — determinization on
   demand. Every subset decision the complement DFA would make is
   available locally:
     - the empty subset is exactly the complement's accepting *sink*
       (the first pruning idea of Section 7 / Figure 12);
     - "complement-accepting" = the subset contains no final state;
     - "target-accepting" (for possible rewriting, Figure 9) = the subset
       contains a final state.
   Both the eager algorithm of Figure 3 and the lazy variant of Section 7
   drive this same structure; so does Figure 9's possible rewriting. *)

module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

module Subset_map = Map.Make (struct
  type t = Auto.Int_set.t
  let compare = Auto.Int_set.compare
end)

module Node_map = Map.Make (struct
  type t = int * int
  let compare = compare
end)

type node = { q : int; subset : int }

type t = {
  fork : Fork_automaton.t;
  target : Auto.Nfa.t;
  (* interned subsets of target states *)
  subsets : Auto.Int_set.t Vec.t;
  mutable subset_ids : int Subset_map.t;
  (* memoized moves, keyed by sid * sym_base + dense symbol id: an int
     key hashes in a few ns, where the old (int, Symbol.t) pair key
     re-hashed the label string on every probe *)
  subset_steps : (int, int) Hashtbl.t;
  sym_base : int;  (* strictly above every dense symbol id in the fork *)
  (* interned product nodes *)
  nodes : node Vec.t;
  mutable node_ids : int Node_map.t;
  succs : (int, (int * int) array) Hashtbl.t;  (* nid -> (edge id, target nid) *)
  initial : int;
}

let intern_subset t set =
  match Subset_map.find_opt set t.subset_ids with
  | Some id -> id
  | None ->
    let id = Vec.push t.subsets set in
    t.subset_ids <- Subset_map.add set id t.subset_ids;
    id

let intern_node t q subset =
  match Node_map.find_opt (q, subset) t.node_ids with
  | Some id -> id
  | None ->
    let id = Vec.push t.nodes { q; subset } in
    t.node_ids <- Node_map.add (q, subset) id t.node_ids;
    id

let create ~fork ~target =
  let sym_base =
    1 + Array.fold_left max 0 fork.Fork_automaton.edge_label_id
  in
  let t =
    { fork; target;
      subsets = Vec.create ~dummy:Auto.Int_set.empty;
      subset_ids = Subset_map.empty;
      subset_steps = Hashtbl.create 64;
      sym_base;
      nodes = Vec.create ~dummy:{ q = 0; subset = 0 };
      node_ids = Node_map.empty;
      succs = Hashtbl.create 64;
      initial = 0 }
  in
  let start_set = Auto.Nfa.eps_closure target (Auto.Int_set.singleton target.Auto.Nfa.start) in
  let sid = intern_subset t start_set in
  let initial = intern_node t fork.Fork_automaton.start sid in
  assert (initial = 0);
  t

let initial t = t.initial
let node t nid = Vec.get t.nodes nid
let node_count t = Vec.length t.nodes

let subset_step t sid sym lid =
  let key = (sid * t.sym_base) + lid in
  match Hashtbl.find_opt t.subset_steps key with
  | Some id -> id
  | None ->
    let set = Vec.get t.subsets sid in
    let next = Auto.Nfa.step_set t.target set sym in
    let id = intern_subset t next in
    Hashtbl.add t.subset_steps key id;
    id

(* Successors of a product node: one per A_w^k edge leaving its q.
   Epsilon edges leave the subset untouched. Memoized; the expansion
   walks the fork automaton's CSR arrays and allocates only the result
   array. *)
let succ t nid =
  match Hashtbl.find_opt t.succs nid with
  | Some s -> s
  | None ->
    let { q; subset } = Vec.get t.nodes nid in
    let fork = t.fork in
    let lo = fork.Fork_automaton.out_off.(q) in
    let hi = fork.Fork_automaton.out_off.(q + 1) in
    let s = Array.make (hi - lo) (0, 0) in
    for i = lo to hi - 1 do
      let eid = fork.Fork_automaton.out_edge.(i) in
      let lid = fork.Fork_automaton.edge_label_id.(eid) in
      let subset' =
        if lid < 0 then subset
        else
          match fork.Fork_automaton.edges.(eid).Fork_automaton.label with
          | Some sym -> subset_step t subset sym lid
          | None -> assert false
      in
      s.(i - lo) <-
        (eid, intern_node t fork.Fork_automaton.edge_dst.(eid) subset')
    done;
    Hashtbl.add t.succs nid s;
    s

(* Word completed (q is the final state of A_w^k). *)
let word_done t nid = (node t nid).q = t.fork.Fork_automaton.final

(* Is the subset "dead": no continuation can reach the target language,
   and the current prefix is not in it. This is the complement's
   accepting sink. *)
let subset_is_dead t nid =
  Auto.Int_set.is_empty (Vec.get t.subsets (node t nid).subset)

(* Does the current subset contain a target-accepting state? *)
let subset_accepting t nid =
  let set = Vec.get t.subsets (node t nid).subset in
  not (Auto.Int_set.is_empty (Auto.Int_set.inter set t.target.Auto.Nfa.finals))

(* Bad-accepting for SAFE rewriting: the word is complete but not in the
   target language (an accepting state of A_w^k x complement(R)). *)
let bad_accepting t nid = word_done t nid && not (subset_accepting t nid)

(* Good-accepting for POSSIBLE rewriting: complete and in the language. *)
let good_accepting t nid = word_done t nid && subset_accepting t nid

let fork t = t.fork
