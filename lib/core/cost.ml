(* Invocation-cost planning: the paper asks the extracted rewriting to
   "minimize the rewriting cost, [choosing] a path with minimal
   number/cost of function invocations" (Figure 3 step 23 and Figure 9
   step d). This module computes those optima on the product game:

   - POSSIBLE mode: the cheapest total fee of an accepting path
     (Dijkstra; invoke epsilon-edges weigh the service fee, every other
     edge is free). The per-node values can order execution choices.

   - SAFE mode: the guaranteed worst-case fee bound of the rewriter's
     best strategy: adversary (service outputs) maximizes, the rewriter
     minimizes at forks. Cycles controlled by the adversary can make the
     bound infinite (e.g. a starred output type whose elements must all
     be invoked): the value iteration detects divergence and reports
     [infinity]. *)

module Auto = Axml_schema.Auto

type fn = string -> float

(* Weight of a product move along A_w^k edge [eid]: the service fee when
   the edge is the invoke option of a fork. *)
let edge_weight fork ~cost eid =
  match Fork_automaton.fork_of_edge fork eid with
  | Some f when eid = f.Fork_automaton.invoke_edge -> cost f.Fork_automaton.fname
  | Some _ | None -> 0.

(* ------------------------------------------------------------------ *)
(* Possible mode: single-source shortest path                          *)
(* ------------------------------------------------------------------ *)

module Pq = Set.Make (struct
  type t = float * int
  let compare = compare
end)

(* [possible_costs pos ~cost] returns [dist], the minimal fee needed to
   reach acceptance from each discovered product node ([infinity] when
   none is reachable). *)
let possible_costs (pos : Possible.t) ~(cost : fn) : int -> float =
  let p = pos.Possible.product in
  let fork = Product.fork p in
  (* forward exploration to enumerate nodes and build reverse edges *)
  let rev : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 256 in
  let seen = Bitvec.create () in
  let goals = ref [] in
  let queue = Queue.create () in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      if Product.good_accepting p nid then goals := nid :: !goals;
      Queue.add nid queue
    end
  in
  discover (Product.initial p);
  while not (Queue.is_empty queue) do
    let nid = Queue.take queue in
    if not (Product.subset_is_dead p nid) then
      Array.iter
        (fun (eid, tgt) ->
          let w = edge_weight fork ~cost eid in
          let l =
            match Hashtbl.find_opt rev tgt with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.add rev tgt l;
              l
          in
          l := (nid, w) :: !l;
          discover tgt)
        (Product.succ p nid)
  done;
  (* Dijkstra from the accepting nodes over the reversed edges *)
  let dist : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let frontier = ref Pq.empty in
  let relax nid d =
    match Hashtbl.find_opt dist nid with
    | Some d' when d' <= d -> ()
    | _ ->
      Hashtbl.replace dist nid d;
      frontier := Pq.add (d, nid) !frontier
  in
  List.iter (fun g -> relax g 0.) !goals;
  while not (Pq.is_empty !frontier) do
    let ((d, nid) as entry) = Pq.min_elt !frontier in
    frontier := Pq.remove entry !frontier;
    if Hashtbl.find dist nid = d then
      match Hashtbl.find_opt rev nid with
      | None -> ()
      | Some preds -> List.iter (fun (pred, w) -> relax pred (d +. w)) !preds
  done;
  fun nid ->
    match Hashtbl.find_opt dist nid with
    | Some d -> d
    | None -> Float.infinity

(* Cheapest total fee of a successful rewriting, assuming services
   cooperate; [None] when the rewriting is impossible. *)
let possible_min_cost (pos : Possible.t) ~cost : float option =
  if not pos.Possible.possible then None
  else
    let d = possible_costs pos ~cost (Product.initial pos.Possible.product) in
    if Float.is_finite d then Some d else None

(* ------------------------------------------------------------------ *)
(* Safe mode: worst-case value of the rewriter's best strategy         *)
(* ------------------------------------------------------------------ *)

(* Collect the unmarked product nodes reachable when the rewriter only
   ever steps to unmarked nodes. *)
let safe_reachable (m : Marking.t) =
  let p = m.Marking.product in
  let seen = Bitvec.create () in
  let order = ref [] in
  let queue = Queue.create () in
  let discover nid =
    if (not (Bitvec.get seen nid)) && not (Marking.is_marked m nid) then begin
      Bitvec.set seen nid;
      order := nid :: !order;
      Queue.add nid queue
    end
  in
  discover (Product.initial p);
  while not (Queue.is_empty queue) do
    let nid = Queue.take queue in
    Array.iter (fun (_, tgt) -> discover tgt) (Product.succ p nid)
  done;
  List.rev !order

(* [safe_worst_cost m ~cost] is [None] when the word is not safely
   rewritable, [Some bound] otherwise — the maximal total fee the
   rewriter's cheapest strategy may have to pay, over all honest service
   behaviours. [Some infinity] when the adversary can force unboundedly
   many paid invocations. *)
let safe_worst_cost (m : Marking.t) ~(cost : fn) : float option =
  if not m.Marking.safe then None
  else begin
    let p = m.Marking.product in
    let fork = Product.fork p in
    let nodes = safe_reachable m in
    let value : (int, float) Hashtbl.t = Hashtbl.create 64 in
    let get nid = Option.value ~default:0. (Hashtbl.find_opt value nid) in
    (* One Bellman-style sweep; returns the nodes whose value grew.
       V(n) = max over adversary choices, where a choice is either a
       plain edge, or a fork pair at which the rewriter takes
       min(keep, fee + invoke) over its unmarked options. *)
    let sweep () =
      let changed = ref [] in
      List.iter
        (fun nid ->
          let succs = Product.succ p nid in
          let option_value eid tgt =
            if Marking.is_marked m tgt then Float.infinity
            else edge_weight fork ~cost eid +. get tgt
          in
          (* group fork options by fork id; plain edges stand alone *)
          let plain = ref [] in
          let pairs : (int, float list ref) Hashtbl.t = Hashtbl.create 4 in
          Array.iter
            (fun (eid, tgt) ->
              match Fork_automaton.fork_of_edge fork eid with
              | None -> plain := option_value eid tgt :: !plain
              | Some _ ->
                let fid = fork.Fork_automaton.fork_of_edge.(eid) in
                let l =
                  match Hashtbl.find_opt pairs fid with
                  | Some l -> l
                  | None ->
                    let l = ref [] in
                    Hashtbl.add pairs fid l;
                    l
                in
                l := option_value eid tgt :: !l)
            succs;
          let candidates =
            !plain
            @ Hashtbl.fold
                (fun _ options acc ->
                  List.fold_left min Float.infinity !options :: acc)
                pairs []
          in
          let v = List.fold_left max 0. candidates in
          if v > get nid then begin
            Hashtbl.replace value nid v;
            changed := nid :: !changed
          end)
        nodes;
      !changed
    in
    (* With acyclic dependencies a fixpoint arrives within n+1 sweeps;
       nodes that still grow afterwards sit on an adversary-controlled
       positive-fee cycle: their value is infinite. Re-settle (infinite
       values propagate but never change again), repeating if new cyclic
       growth appears. Terminates: each outer round pins at least one
       node to infinity. *)
    let n = List.length nodes in
    let rec run i =
      match sweep () with
      | [] -> ()
      | changed ->
        if i >= n + 1 then begin
          List.iter (fun nid -> Hashtbl.replace value nid Float.infinity) changed;
          run 0
        end
        else run (i + 1)
    in
    run 0;
    Some (get (Product.initial p))
  end
