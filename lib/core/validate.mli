(** Schema validation (Definition 3): a document is an instance of a
    schema when every data node's children word belongs to its label's
    content model and every function node's parameter word belongs to
    its input type.

    A {!ctx} caches the compiled DFA of every content model, so repeated
    validations (the enforcement module validates every exchanged
    document) cost one automaton construction per type. *)

type violation_kind =
  | Unknown_label of string
  | Unknown_function of string
  | Content_mismatch of { label : string; word : Axml_schema.Symbol.t list }
  | Input_mismatch of { fname : string; word : Axml_schema.Symbol.t list }
  | Root_mismatch of { expected : string; found : string }

type violation = { at : Document.path; kind : violation_kind }

val pp_violation_kind : violation_kind Fmt.t
val pp_violation : violation Fmt.t

type ctx

val ctx : ?env:Axml_schema.Schema.env -> Axml_schema.Schema.t -> ctx
(** Validation context for one schema. Input/output types of functions
    are looked up in [env] (default: the schema's own environment), so a
    peer may validate documents embedding calls declared only by the
    other party's WSDL. *)

val element_dfa : ctx -> string -> Axml_schema.Auto.Dfa.t option
val input_dfa : ctx -> string -> Axml_schema.Auto.Dfa.t option
val output_dfa : ctx -> string -> Axml_schema.Auto.Dfa.t option

val forest_accepted :
  Axml_schema.Auto.Dfa.Dense.dense -> Document.forest -> bool
(** Membership of a children forest in a dense-compiled content model:
    steps the flat tables directly over the children — no word list, no
    allocation, early exit through the absorbing reject state. *)

val violations : ctx -> Document.t -> violation list
(** All violations, prefix order; [[]] means instance. *)

val instance_of : ctx -> Document.t -> bool

val document_violations : ctx -> Document.t -> violation list
(** As {!violations}, additionally requiring the schema's distinguished
    root label. *)

val document_conforms : ctx -> Document.t -> bool
(** Boolean twin of {!document_violations}: same verdict as
    [document_violations ctx doc = []], but walks the dense tables with
    no path or list allocation and stops at the first offence. *)

val output_instance : ctx -> string -> Document.forest -> violation list
(** Is the forest an output instance of the function (Definition 3)? *)

val input_instance : ctx -> string -> Document.forest -> violation list
