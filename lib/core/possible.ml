(* POSSIBLE rewriting (Figure 9): does *some* choice of invocations and
   some choice of service outputs turn the word into the target language?
   In automata terms: is the intersection of A_w^k with the target
   language non-empty — i.e. can the initial product node reach a node
   where the word is complete and inside the language?

   All edges are existential here (no adversary), so the analysis is a
   plain backward reachability from the good-accepting nodes: [live]
   nodes are those with some outgoing path to acceptance (step 5 of
   Figure 9). The extracted rewriting only *may* succeed; execution
   (Execute) backtracks when a call's actual return value falls off every
   live path, as prescribed by step (c) of Figure 9. *)

type stats = { discovered_nodes : int; live_nodes : int }

type t = {
  product : Product.t;
  live : Bitvec.t;
  possible : bool;
  stats : stats;
}

let is_live t nid = Bitvec.get t.live nid

let analyze p =
  (* forward exploration of the full reachable product; the reverse
     graph goes into flat int vectors (head/next/pred chains) instead
     of per-node list refs, so discovery allocates nothing per edge *)
  let seen = Bitvec.create () in
  let rev_head = Vec.create ~dummy:(-1) in
  let rev_next = Vec.create ~dummy:(-1) in
  let rev_pred = Vec.create ~dummy:(-1) in
  let accepting = ref [] in
  let frontier = Queue.create () in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      if Product.good_accepting p nid then accepting := nid :: !accepting;
      Queue.add nid frontier
    end
  in
  discover (Product.initial p);
  while not (Queue.is_empty frontier) do
    let nid = Queue.take frontier in
    (* skip expanding dead subsets: nothing reachable from them accepts *)
    if not (Product.subset_is_dead p nid) then
      Array.iter
        (fun (_, tgt) ->
          Vec.ensure rev_head (tgt + 1);
          let j = Vec.push rev_pred nid in
          ignore (Vec.push rev_next (Vec.get rev_head tgt));
          Vec.set rev_head tgt j;
          discover tgt)
        (Product.succ p nid)
  done;
  (* backward reachability from accepting nodes *)
  let live = Bitvec.create () in
  let nlive = ref 0 in
  let back = Queue.create () in
  let mark_live nid =
    if not (Bitvec.get live nid) then begin
      Bitvec.set live nid;
      incr nlive;
      Queue.add nid back
    end
  in
  List.iter mark_live !accepting;
  while not (Queue.is_empty back) do
    let nid = Queue.take back in
    if nid < Vec.length rev_head then begin
      let j = ref (Vec.get rev_head nid) in
      while !j >= 0 do
        mark_live (Vec.get rev_pred !j);
        j := Vec.get rev_next !j
      done
    end
  done;
  { product = p;
    live;
    possible = Bitvec.get live (Product.initial p);
    stats = { discovered_nodes = Product.node_count p; live_nodes = !nlive } }
