(* Schema validation (Definition 3): a document is an instance of a
   schema when every data node's children word is in the language of its
   label's content model and every function node's parameter word is in
   the language of its input type.

   A [ctx] caches the compiled DFA of every content model so repeated
   validations (the enforcement module validates every exchanged
   document) cost one automaton construction per type. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

type violation_kind =
  | Unknown_label of string
  | Unknown_function of string
  | Content_mismatch of { label : string; word : Symbol.t list }
  | Input_mismatch of { fname : string; word : Symbol.t list }
  | Root_mismatch of { expected : string; found : string }

type violation = { at : Document.path; kind : violation_kind }

let pp_word = Fmt.(list ~sep:(any ".") Symbol.pp)

let pp_violation_kind ppf = function
  | Unknown_label l -> Fmt.pf ppf "element type %S is not declared" l
  | Unknown_function f -> Fmt.pf ppf "function %S is not declared" f
  | Content_mismatch { label; word } ->
    Fmt.pf ppf "children of <%s> form %a, outside its content model" label pp_word word
  | Input_mismatch { fname; word } ->
    Fmt.pf ppf "parameters of %s() form %a, outside its input type" fname pp_word word
  | Root_mismatch { expected; found } ->
    Fmt.pf ppf "root is <%s> but the schema requires <%s>" found expected

let pp_violation ppf v =
  Fmt.pf ppf "%a: %a" Document.pp_path v.at pp_violation_kind v.kind

module Dense = Auto.Dfa.Dense
module Sym_id = Axml_schema.Sym_id

type ctx = {
  env : Schema.env;
  schema : Schema.t;
  element_dfas : (string, Auto.Dfa.t option) Hashtbl.t;
  input_dfas : (string, Auto.Dfa.t option) Hashtbl.t;
  output_dfas : (string, Auto.Dfa.t option) Hashtbl.t;
  (* dense twins of the tables above, compiled on first use: the inner
     validation loop steps these and allocates nothing per node *)
  element_dense : (string, Dense.dense option) Hashtbl.t;
  input_dense : (string, Dense.dense option) Hashtbl.t;
}

let ctx ?env schema =
  let env = match env with Some e -> e | None -> Schema.env_of_schema schema in
  { env; schema;
    element_dfas = Hashtbl.create 16;
    input_dfas = Hashtbl.create 16;
    output_dfas = Hashtbl.create 16;
    element_dense = Hashtbl.create 16;
    input_dense = Hashtbl.create 16 }

let memo table key compute =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add table key v;
    v

let element_dfa ctx label =
  memo ctx.element_dfas label (fun () ->
      Option.map
        (fun c -> Auto.Dfa.of_regex (Schema.compile_content ctx.env c))
        (Schema.find_element ctx.schema label))

(* Input/output types are looked up in the environment: the validating
   peer knows the WSDL of every function, including ones declared only by
   the other party's schema. *)
let input_dfa ctx fname =
  memo ctx.input_dfas fname (fun () ->
      Option.map
        (fun (f : Schema.func) ->
          Auto.Dfa.of_regex (Schema.compile_content ctx.env f.Schema.f_input))
        (Schema.String_map.find_opt fname ctx.env.Schema.env_functions))

let output_dfa ctx fname =
  memo ctx.output_dfas fname (fun () ->
      Option.map
        (fun (f : Schema.func) ->
          Auto.Dfa.of_regex (Schema.compile_content ctx.env f.Schema.f_output))
        (Schema.String_map.find_opt fname ctx.env.Schema.env_functions))

let element_dense ctx label =
  memo ctx.element_dense label (fun () ->
      Option.map (Dense.compile ~sym_id:Sym_id.of_symbol) (element_dfa ctx label))

let input_dense ctx fname =
  memo ctx.input_dense fname (fun () ->
      Option.map (Dense.compile ~sym_id:Sym_id.of_symbol) (input_dfa ctx fname))

(* Dense id of one child, without building a Symbol.t. *)
let child_id = function
  | Document.Elem { label; _ } -> Sym_id.of_label label
  | Document.Data _ -> Sym_id.data
  | Document.Call { name; _ } -> Sym_id.of_fun name

(* Membership of a children forest in a dense content model: steps the
   flat tables directly over the children, no word list, no allocation.
   The reject state (-1) is absorbing, so the loop can stop early. *)
let forest_accepted dense children =
  let rec run s = function
    | [] -> Dense.is_final dense s
    | child :: rest -> s >= 0 && run (Dense.step_id dense s (child_id child)) rest
  in
  run (Dense.start dense) children

(* Collect the violations of [doc] against the schema, prefix order. *)
let violations ctx (doc : Document.t) : violation list =
  let acc = ref [] in
  let push at kind = acc := { at; kind } :: !acc in
  let rec visit path node =
    (match node with
     | Document.Data _ -> ()
     | Document.Elem { label; children } ->
       (match element_dense ctx label with
        | None -> push (List.rev path) (Unknown_label label)
        | Some dense ->
          if not (forest_accepted dense children) then
            let word = Document.word children in
            push (List.rev path) (Content_mismatch { label; word }))
     | Document.Call { name; params } ->
       (match input_dense ctx name with
        | None -> push (List.rev path) (Unknown_function name)
        | Some dense ->
          if not (forest_accepted dense params) then
            let word = Document.word params in
            push (List.rev path) (Input_mismatch { fname = name; word })));
    List.iteri (fun i child -> visit (i :: path) child) (Document.children node)
  in
  visit [] doc;
  List.rev !acc

let instance_of ctx doc = violations ctx doc = []

(* Boolean twin of [violations]: no paths, no lists, early exit on the
   first offence — the per-document gate of warm enforcement. *)
let rec conforms ctx (node : Document.t) =
  (match node with
   | Document.Data _ -> true
   | Document.Elem { label; children } ->
     (match element_dense ctx label with
      | None -> false
      | Some dense -> forest_accepted dense children)
   | Document.Call { name; params } ->
     (match input_dense ctx name with
      | None -> false
      | Some dense -> forest_accepted dense params))
  && List.for_all (conforms ctx) (Document.children node)

(* As [violations], additionally requiring the schema's distinguished
   root label (Definition 6 context). *)
let document_violations ctx doc =
  let root_violations =
    match ctx.schema.Schema.root, doc with
    | Some expected, Document.Elem { label; _ } when not (String.equal label expected) ->
      [ { at = []; kind = Root_mismatch { expected; found = label } } ]
    | Some expected, (Document.Data _ | Document.Call _) ->
      [ { at = []; kind = Root_mismatch { expected; found = "(not an element)" } } ]
    | _ -> []
  in
  root_violations @ violations ctx doc

(* Boolean twin of [document_violations]. *)
let document_conforms ctx (doc : Document.t) =
  (match ctx.schema.Schema.root, doc with
   | Some expected, Document.Elem { label; _ } -> String.equal label expected
   | Some _, (Document.Data _ | Document.Call _) -> false
   | None, _ -> true)
  && conforms ctx doc

(* Output-instance check (Definition 3, second part): the forest a
   service returned, against its declared output type. *)
let output_instance ctx fname (forest : Document.forest) : violation list =
  match output_dfa ctx fname with
  | None -> [ { at = []; kind = Unknown_function fname } ]
  | Some dfa ->
    let word = Document.word forest in
    let word_ok =
      if Auto.Dfa.accepts dfa word then []
      else [ { at = []; kind = Content_mismatch { label = fname ^ "() output"; word } } ]
    in
    word_ok
    @ List.concat (List.mapi (fun i tree ->
          List.map (fun v -> { v with at = i :: v.at }) (violations ctx tree))
        forest)

let input_instance ctx fname (forest : Document.forest) : violation list =
  match input_dfa ctx fname with
  | None -> [ { at = []; kind = Unknown_function fname } ]
  | Some dfa ->
    let word = Document.word forest in
    let word_ok =
      if Auto.Dfa.accepts dfa word then []
      else [ { at = []; kind = Input_mismatch { fname; word } } ]
    in
    word_ok
    @ List.concat (List.mapi (fun i tree ->
          List.map (fun v -> { v with at = i :: v.at }) (violations ctx tree))
        forest)
