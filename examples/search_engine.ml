(* The recursive search-engine example of Section 3: a query answer
   carries some URLs plus a "More" handle — a service call returning more
   URLs and possibly another handle. A receiver that wants plain data
   forces the sender to chase the handles.

   This pattern is NEVER safe at any bounded depth k (the service may
   always return yet another handle), but it is always POSSIBLE — so the
   enforcement module needs the possible-rewriting fallback, and whether
   it succeeds depends on how deep the actual result pages go versus the
   allowed rewriting depth k.

   Run with:  dune exec examples/search_engine.exe *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Rewriter = Axml_core.Rewriter
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Enforcement = Axml_peer.Enforcement
module Policy = Axml_peer.Policy

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

let engine_schema =
  parse_schema
    {|
root results
element results = url*.More?
element url = #data
function More : () -> url*.More?
|}

(* The receiver wants plain URLs only. *)
let plain_schema = Policy.extensional engine_schema

(* A search service whose answer spans [pages] pages: each More call
   returns two URLs and, except on the last page, another More handle. *)
let paged_service ~pages =
  let page = ref 1 in
  Service.make "More" ~input:R.epsilon
    ~output:
      (R.seq
         (R.star (R.sym (Schema.A_label "url")))
         (R.opt (R.sym (Schema.A_fun "More"))))
    (fun _params ->
      incr page;
      let p = !page in
      let urls =
        [ D.elem "url" [ D.data (Fmt.str "http://example.org/p%d/a" p) ];
          D.elem "url" [ D.data (Fmt.str "http://example.org/p%d/b" p) ] ]
      in
      if p < pages then urls @ [ D.call "More" [] ] else urls)

let first_answer =
  D.elem "results"
    [ D.elem "url" [ D.data "http://example.org/p1/a" ];
      D.call "More" [] ]

let attempt ~k ~pages =
  let reg = Registry.create () in
  Registry.register reg (paged_service ~pages);
  let rw = Rewriter.create ~k ~s0:engine_schema ~target:plain_schema () in
  Fmt.pr "k=%d, actual pages=%d: safe? %b, possible? %b -> " k pages
    (Rewriter.is_safe rw first_answer)
    (Rewriter.is_possible rw first_answer);
  let config =
    { Enforcement.default_config with Enforcement.k; fallback_possible = true }
  in
  match
    Enforcement.enforce ~config ~s0:engine_schema ~exchange:plain_schema
      ~invoker:(Registry.invoker reg) first_answer
  with
  | Ok (doc, _) ->
    Fmt.pr "MATERIALIZED %d urls with %d calls@."
      (List.length (D.children doc))
      (Registry.invocation_count reg)
  | Error (Enforcement.Attempt_failed _) ->
    Fmt.pr "attempt FAILED at run time (answer deeper than k)@."
  | Error (Enforcement.Rejected _) -> Fmt.pr "rejected statically@."
  | Error (Enforcement.Service_fault _) -> Fmt.pr "service FAULT@."
  | Error (Enforcement.Precluded _) -> Fmt.pr "precluded by lint@."

let () =
  Fmt.pr "Intensional answer: %a@.@." D.pp first_answer;
  (* the initial answer is page 1; chasing an n-page answer nests the
     returned More handles n-1 deep, so it needs rewriting depth n-1 *)
  attempt ~k:1 ~pages:2;
  attempt ~k:1 ~pages:3;
  attempt ~k:2 ~pages:3;
  attempt ~k:3 ~pages:5;
  attempt ~k:4 ~pages:5;
  Fmt.pr "@.Note: no k makes this SAFE (the signature always allows one \
          more handle); the possible-rewriting fallback is what chases \
          the pages, exactly as discussed in Section 3 of the paper.@."
