# The sender's local schema for the newspaper example (paper, Fig. 1):
# the newspaper may ship the temperature and the exhibit list either as
# plain data or as embedded service calls.
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element exhibit = title.(Get_Date | date)
function Get_Temp : #data -> temp
function Get_Date : title -> date
function TimeOut : #data -> exhibit*
