# The agreed exchange schema: fully extensional — every call the sender
# may embed must be materialized before the data crosses the wire.
root newspaper
element newspaper = title.date.temp.exhibit*
element title = #data
element date = #data
element temp = #data
element exhibit = title.date
