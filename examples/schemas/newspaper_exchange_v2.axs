# Version 2 of the agreed exchange schema — the evolution the diff /
# migrate walkthrough analyzes against v1 (newspaper_exchange.axs):
#   - newspaper NARROWS: at least one exhibit is now required (v1
#     accepted title.date.temp with no exhibit at all)        -> AXM040
#   - exhibit WIDENS: the date may stay an embedded Get_Date call,
#     so receivers must be ready to invoke it themselves       -> AXM043
#   - Get_Date changes signature versus the sender's declaration: it
#     is noninvocable here, a receiver-side contract change    -> AXM044
root newspaper
element newspaper = title.date.temp.exhibit.exhibit*
element title = #data
element date = #data
element temp = #data
element exhibit = title.(Get_Date | date)
noninvocable function Get_Date : title -> date
